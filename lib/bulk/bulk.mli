(** Bulk transfer: the large-message companion FLIPC deliberately lacks.

    The paper: "FLIPC was designed solely to address the transport of
    medium sized messages and needs to be integrated into a system that
    provides excellent performance for messages of all sizes. As part of
    this work, we are considering extensions that allow applications to
    indirectly access memory on other nodes" (citing SUNMOS, PAM and Fast
    Messages). This module implements that extension in the same style as
    PAM's bulk facility: one-sided reads and writes of {e exported}
    remote-memory regions, as a separate protocol coexisting with FLIPC on
    the same network interface.

    Protocol: an application exports a window of its node's memory,
    producing a wire-safe handle. [put] streams data into a remote window
    in fragments (large-message data throughput; receiver-side DMA), with
    a single acknowledgment at the end; [get] requests a remote stream in
    the other direction. Offsets are validated against the exported window
    on the owning node, so a peer can never write outside what was
    explicitly exported — the protection story for remote access.

    Throughput is calibrated to the era's observed software bulk rates
    (~160-175 MB/s on 200 MB/s links): the per-byte sender cost models
    the protocol/paging work that kept real software below the wire
    rate. *)

type t
type region

type config = {
  max_fragment : int;  (** data bytes per wire fragment *)
  setup_ns : int;  (** per-transfer initiation cost *)
  per_fragment_ns : int;  (** per-fragment protocol processing *)
  sender_ns_per_byte : float;
      (** per-byte sender-side cost (DMA + protocol); the pipeline
          bottleneck that sets the software bandwidth *)
}

val default_config : config

(** [create machine ()] installs the bulk protocol on every node's NIC. *)
val create : ?config:config -> Flipc.Machine.t -> t

(** {1 Regions} *)

(** [export t ~node ~len] allocates [len] bytes from the node's heap and
    exports them. *)
val export : t -> node:int -> len:int -> region

(** [export_at t ~node ~base ~len] exports an existing memory range. *)
val export_at : t -> node:int -> base:int -> len:int -> region

val region_node : region -> int
val region_len : region -> int
val region_base : region -> int

(** Wire-safe handle, e.g. to embed in a FLIPC message payload. *)
val handle : region -> int

val region_of_handle : t -> int -> region option

(** {1 Transfers (call from a simulation process)} *)

(** [put t ~from ~at region data] streams [data] into [region] at offset
    [at] (default 0) from node [from], blocking until the remote side has
    acknowledged the last fragment. Raises [Invalid_argument] on bounds
    violations (checked locally and again on the owning node). *)
val put : t -> from:int -> ?at:int -> region -> Bytes.t -> unit

(** [get t ~into ~at region ~len] fetches [len] bytes from [region] at
    offset [at] to node [into], blocking until complete. *)
val get : t -> into:int -> ?at:int -> region -> len:int -> Bytes.t

(** [cancel t ~node ~transfer] aborts an in-flight transfer: the
    streaming side stops at its next fragment boundary, fragments still
    in flight are dropped on arrival, and the blocked [put]/[get] raises
    [Invalid_argument]. [node] is the node issuing the cancel (recorded
    in the trace). Idempotent; unknown ids are ignored. *)
val cancel : t -> node:int -> transfer:int -> unit

(** Id of the most recently initiated transfer (for [cancel] in tests:
    transfer ids are allocated sequentially from 1). *)
val last_transfer : t -> int

(** {1 Statistics} *)

type stats = {
  mutable puts : int;
  mutable gets : int;
  mutable data_bytes : int;
  mutable fragments : int;
  mutable rejected : int;  (** fragments refused by bounds validation *)
}

val stats : t -> stats
