module Sim = Flipc_sim.Engine
module Condvar = Flipc_sim.Sync.Condvar
module Shared_mem = Flipc_memsim.Shared_mem
module Machine = Flipc.Machine
module Nic = Flipc_net.Nic
module Dma = Flipc_net.Dma
module Packet = Flipc_net.Packet
module Obs = Flipc_obs.Obs
module Event = Flipc_obs.Event

type config = {
  max_fragment : int;
  setup_ns : int;
  per_fragment_ns : int;
  sender_ns_per_byte : float;
}

let default_config =
  {
    max_fragment = 4096;
    setup_ns = 16_000;
    per_fragment_ns = 2_000;
    sender_ns_per_byte = 5.3;
  }

type region = { r_id : int; r_node : int; r_base : int; r_len : int }

type stats = {
  mutable puts : int;
  mutable gets : int;
  mutable data_bytes : int;
  mutable fragments : int;
  mutable rejected : int;
}

type put_wait = { mutable put_status : int option; put_cv : Condvar.t }

type get_wait = {
  g_buf : Bytes.t;
  mutable g_received : int;
  mutable g_failed : bool;
  mutable g_cancelled : bool;
  g_cv : Condvar.t;
}

type rx_progress = { mutable remaining : int }

type t = {
  machine : Machine.t;
  config : config;
  regions : (int, region) Hashtbl.t;
  put_waits : (int, put_wait) Hashtbl.t;
  get_waits : (int, get_wait) Hashtbl.t;
  rx_puts : (int, rx_progress) Hashtbl.t;  (* transfer id -> progress *)
  cancelled : (int, unit) Hashtbl.t;  (* transfer ids, suppress late frags *)
  transfer_mids : (int, int) Hashtbl.t;  (* transfer id -> causal mid *)
  mutable next_region : int;
  mutable next_transfer : int;
  stats : stats;
}

(* Trace events go to the machine's bundle; one fresh causal message id
   is stamped per transfer ({!Flipc.Api.fresh_msg_id}), so both sides'
   bulk events join the same span. *)
let emit t ev =
  let o = Machine.obs t.machine in
  if Obs.tracing o then Obs.event o (ev ())

let mid_of_transfer t transfer =
  Option.value (Hashtbl.find_opt t.transfer_mids transfer) ~default:0

(* Opcodes in Packet.tag. *)
let op_put_data = 0
let op_put_ack = 1
let op_get_req = 2
let op_get_data = 3

let get_i32 b off = Int32.to_int (Bytes.get_int32_le b off)

let set_i32 b off v = Bytes.set_int32_le b off (Int32.of_int v)

let stats t = t.stats

let stream_cost config frag_bytes =
  config.per_fragment_ns
  + int_of_float (Float.round (float_of_int frag_bytes *. config.sender_ns_per_byte))

let send_packet t ~src ~dst ~op ~transfer payload =
  Nic.send
    (Machine.nic (Machine.node t.machine src))
    (Packet.make ~src ~dst ~protocol:Packet.Bulk ~tag:op ~seq:transfer payload)

(* --- receive-side handlers (run as fresh processes per packet) --- *)

let reject_put t (p : Packet.t) =
  t.stats.rejected <- t.stats.rejected + 1;
  send_packet t ~src:p.Packet.dst ~dst:p.Packet.src ~op:op_put_ack
    ~transfer:p.Packet.seq
    (let b = Bytes.create 4 in
     set_i32 b 0 1;
     b)

let handle_put_data t (p : Packet.t) =
  let payload = p.Packet.payload in
  if Hashtbl.mem t.cancelled p.Packet.seq then
    (* Late fragment of a cancelled transfer: drop it without an ack so
       the transfer makes no further progress. *)
    ()
  else if Bytes.length payload < 12 then reject_put t p
  else
    let handle = get_i32 payload 0 in
    let offset = get_i32 payload 4 in
    let total = get_i32 payload 8 in
    let data_len = Bytes.length payload - 12 in
    match Hashtbl.find_opt t.regions handle with
    | Some r
      when r.r_node = p.Packet.dst
           && offset >= 0 && total >= 0
           && offset + data_len <= r.r_len ->
        let node = Machine.node t.machine p.Packet.dst in
        let data = Bytes.sub payload 12 data_len in
        Dma.write (Machine.dma node) ~pos:(r.r_base + offset) data;
        t.stats.fragments <- t.stats.fragments + 1;
        emit t (fun () ->
            Event.Bulk_chunk
              { node = p.Packet.dst; transfer = p.Packet.seq; offset;
                len = data_len; mid = mid_of_transfer t p.Packet.seq });
        let progress =
          match Hashtbl.find_opt t.rx_puts p.Packet.seq with
          | Some pr -> pr
          | None ->
              let pr = { remaining = total } in
              Hashtbl.replace t.rx_puts p.Packet.seq pr;
              pr
        in
        progress.remaining <- progress.remaining - data_len;
        if progress.remaining <= 0 then begin
          Hashtbl.remove t.rx_puts p.Packet.seq;
          emit t (fun () ->
              Event.Bulk_complete
                { node = p.Packet.dst; transfer = p.Packet.seq;
                  mid = mid_of_transfer t p.Packet.seq });
          send_packet t ~src:p.Packet.dst ~dst:p.Packet.src ~op:op_put_ack
            ~transfer:p.Packet.seq
            (let b = Bytes.create 4 in
             set_i32 b 0 0;
             b)
        end
    | Some _ | None -> reject_put t p

let handle_put_ack t (p : Packet.t) =
  match Hashtbl.find_opt t.put_waits p.Packet.seq with
  | None -> ()
  | Some w ->
      w.put_status <- Some (get_i32 p.Packet.payload 0);
      Condvar.broadcast w.put_cv

(* Serve a get by streaming the window back; this runs on the exporting
   node, so the per-byte cost is charged there (it is the data source). *)
let handle_get_req t (p : Packet.t) =
  let payload = p.Packet.payload in
  let handle = get_i32 payload 0 in
  let offset = get_i32 payload 4 in
  let len = get_i32 payload 8 in
  match Hashtbl.find_opt t.regions handle with
  | Some r
    when r.r_node = p.Packet.dst
         && offset >= 0 && len >= 0
         && offset + len <= r.r_len ->
      let node = Machine.node t.machine p.Packet.dst in
      let pos = ref 0 in
      while !pos < len && not (Hashtbl.mem t.cancelled p.Packet.seq) do
        let frag = min t.config.max_fragment (len - !pos) in
        Sim.delay (stream_cost t.config frag);
        let data =
          Shared_mem.read_bytes (Machine.mem node) ~pos:(r.r_base + offset + !pos)
            ~len:frag
        in
        let out = Bytes.create (4 + frag) in
        set_i32 out 0 !pos;
        Bytes.blit data 0 out 4 frag;
        t.stats.fragments <- t.stats.fragments + 1;
        send_packet t ~src:p.Packet.dst ~dst:p.Packet.src ~op:op_get_data
          ~transfer:p.Packet.seq out;
        pos := !pos + frag
      done
  | Some _ | None -> (
      t.stats.rejected <- t.stats.rejected + 1;
      (* A zero-length data fragment with offset -1 signals failure. *)
      let out = Bytes.create 4 in
      set_i32 out 0 0x3FFFFFFF;
      send_packet t ~src:p.Packet.dst ~dst:p.Packet.src ~op:op_get_data
        ~transfer:p.Packet.seq out)

let handle_get_data t (p : Packet.t) =
  match Hashtbl.find_opt t.get_waits p.Packet.seq with
  | None -> ()
  | Some w when w.g_cancelled || Hashtbl.mem t.cancelled p.Packet.seq -> ()
  | Some w ->
      let payload = p.Packet.payload in
      let offset = get_i32 payload 0 in
      if offset = 0x3FFFFFFF then begin
        w.g_failed <- true;
        Condvar.broadcast w.g_cv
      end
      else begin
        let frag = Bytes.length payload - 4 in
        Bytes.blit payload 4 w.g_buf offset frag;
        w.g_received <- w.g_received + frag;
        emit t (fun () ->
            Event.Bulk_chunk
              { node = p.Packet.dst; transfer = p.Packet.seq; offset;
                len = frag; mid = mid_of_transfer t p.Packet.seq });
        if w.g_received >= Bytes.length w.g_buf then begin
          emit t (fun () ->
              Event.Bulk_complete
                { node = p.Packet.dst; transfer = p.Packet.seq;
                  mid = mid_of_transfer t p.Packet.seq });
          Condvar.broadcast w.g_cv
        end
      end

let create ?(config = default_config) machine =
  if config.max_fragment <= 0 then invalid_arg "Bulk.create: bad max_fragment";
  let t =
    {
      machine;
      config;
      regions = Hashtbl.create 16;
      put_waits = Hashtbl.create 16;
      get_waits = Hashtbl.create 16;
      rx_puts = Hashtbl.create 16;
      cancelled = Hashtbl.create 16;
      transfer_mids = Hashtbl.create 16;
      next_region = 0;
      next_transfer = 0;
      stats = { puts = 0; gets = 0; data_bytes = 0; fragments = 0; rejected = 0 };
    }
  in
  for node = 0 to Machine.node_count machine - 1 do
    Nic.set_callback
      (Machine.nic (Machine.node machine node))
      Packet.Bulk
      (fun p ->
        if p.Packet.tag = op_put_data then handle_put_data t p
        else if p.Packet.tag = op_put_ack then handle_put_ack t p
        else if p.Packet.tag = op_get_req then handle_get_req t p
        else if p.Packet.tag = op_get_data then handle_get_data t p)
  done;
  t

let export_at t ~node ~base ~len =
  if len <= 0 then invalid_arg "Bulk.export_at: len <= 0";
  let mem = Machine.mem (Machine.node t.machine node) in
  if base < 0 || base + len > Shared_mem.size mem then
    invalid_arg "Bulk.export_at: range outside node memory";
  t.next_region <- t.next_region + 1;
  let r = { r_id = t.next_region; r_node = node; r_base = base; r_len = len } in
  Hashtbl.replace t.regions r.r_id r;
  r

let export t ~node ~len =
  let base = Machine.alloc_heap (Machine.node t.machine node) len in
  export_at t ~node ~base ~len

let region_node r = r.r_node
let region_len r = r.r_len
let region_base r = r.r_base
let handle r = r.r_id
let region_of_handle t id = Hashtbl.find_opt t.regions id

let fresh_transfer t =
  t.next_transfer <- t.next_transfer + 1;
  t.next_transfer

let put t ~from ?(at = 0) region data =
  let len = Bytes.length data in
  if at < 0 || at + len > region.r_len then
    invalid_arg "Bulk.put: range outside region";
  let id = fresh_transfer t in
  let mid = Flipc.Api.fresh_msg_id () in
  Hashtbl.replace t.transfer_mids id mid;
  emit t (fun () ->
      Event.Bulk_start
        { node = from; dst_node = region.r_node; transfer = id;
          op = Event.Bulk_put; total = len; mid });
  let wait = { put_status = None; put_cv = Condvar.create () } in
  Hashtbl.replace t.put_waits id wait;
  t.stats.puts <- t.stats.puts + 1;
  t.stats.data_bytes <- t.stats.data_bytes + len;
  Sim.delay t.config.setup_ns;
  let pos = ref 0 in
  let continue = ref true in
  while !continue do
    let frag = min t.config.max_fragment (len - !pos) in
    Sim.delay (stream_cost t.config frag);
    let out = Bytes.create (12 + frag) in
    set_i32 out 0 region.r_id;
    set_i32 out 4 (at + !pos);
    set_i32 out 8 len;
    Bytes.blit data !pos out 12 frag;
    send_packet t ~src:from ~dst:region.r_node ~op:op_put_data ~transfer:id out;
    pos := !pos + frag;
    if !pos >= len || Hashtbl.mem t.cancelled id then continue := false
  done;
  let rec await () =
    match wait.put_status with
    | Some status -> status
    | None ->
        Condvar.wait wait.put_cv;
        await ()
  in
  let status = await () in
  Hashtbl.remove t.put_waits id;
  Hashtbl.remove t.transfer_mids id;
  if status = 2 then invalid_arg "Bulk.put: cancelled"
  else if status <> 0 then invalid_arg "Bulk.put: rejected by the owning node"

let get t ~into ?(at = 0) region ~len =
  if at < 0 || len <= 0 || at + len > region.r_len then
    invalid_arg "Bulk.get: range outside region";
  let id = fresh_transfer t in
  let mid = Flipc.Api.fresh_msg_id () in
  Hashtbl.replace t.transfer_mids id mid;
  emit t (fun () ->
      Event.Bulk_start
        { node = into; dst_node = region.r_node; transfer = id;
          op = Event.Bulk_get; total = len; mid });
  let wait =
    { g_buf = Bytes.create len; g_received = 0; g_failed = false;
      g_cancelled = false; g_cv = Condvar.create () }
  in
  Hashtbl.replace t.get_waits id wait;
  t.stats.gets <- t.stats.gets + 1;
  t.stats.data_bytes <- t.stats.data_bytes + len;
  Sim.delay t.config.setup_ns;
  let req = Bytes.create 12 in
  set_i32 req 0 region.r_id;
  set_i32 req 4 at;
  set_i32 req 8 len;
  send_packet t ~src:into ~dst:region.r_node ~op:op_get_req ~transfer:id req;
  let rec await () =
    if wait.g_cancelled then begin
      Hashtbl.remove t.get_waits id;
      Hashtbl.remove t.transfer_mids id;
      invalid_arg "Bulk.get: cancelled"
    end
    else if wait.g_failed then begin
      Hashtbl.remove t.get_waits id;
      Hashtbl.remove t.transfer_mids id;
      invalid_arg "Bulk.get: rejected by the owning node"
    end
    else if wait.g_received >= len then begin
      Hashtbl.remove t.get_waits id;
      Hashtbl.remove t.transfer_mids id;
      wait.g_buf
    end
    else begin
      Condvar.wait wait.g_cv;
      await ()
    end
  in
  await ()

(* Mark a transfer as cancelled: the sender's streaming loop stops at
   its next fragment boundary, late fragments are dropped on arrival,
   and any blocked [put]/[get] is woken to raise. The cancel mark is
   kept so straggler packets stay suppressed. *)
let cancel t ~node ~transfer =
  if not (Hashtbl.mem t.cancelled transfer) then begin
    Hashtbl.replace t.cancelled transfer ();
    emit t (fun () ->
        Event.Bulk_cancel { node; transfer; mid = mid_of_transfer t transfer });
    (match Hashtbl.find_opt t.put_waits transfer with
    | Some w ->
        w.put_status <- Some 2;
        Condvar.broadcast w.put_cv
    | None -> ());
    (match Hashtbl.find_opt t.get_waits transfer with
    | Some w ->
        w.g_cancelled <- true;
        Condvar.broadcast w.g_cv
    | None -> ());
    Hashtbl.remove t.rx_puts transfer
  end

let last_transfer t = t.next_transfer
