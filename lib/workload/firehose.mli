(** Open-loop sustained-load workload ("firehose"; DESIGN.md §16).

    M sender nodes offer messages to N receiver nodes at an externally
    clocked arrival rate ({!Arrivals}; Poisson by default). Arrivals that
    find no free send buffer are {e shed at the source} and counted —
    never blocked on — so offered vs delivered rate measures real system
    throughput rather than echoing the system's own backpressure, and the
    per-message sojourn (send-side arrival stamp to receiver drain,
    {!Flipc_obs.Sketch} quantiles) includes queueing and batching delay.

    Senders flush with {!Flipc.Api.send_burst} every
    {!Flipc.Config.t.app_send_burst} arrivals; receivers drain with
    [receive_burst] in runs of [app_recv_burst]. Knobs at 1 reproduce
    the unbatched singleton path (the ablation baseline). *)

(** Arrival process shape; the mean rate is [1 / mean_gap_ns] for all. *)
type arrival = [ `Poisson | `Periodic | `Jittered of float | `Bursty of int ]

type result = {
  senders : int;
  receivers : int;
  duration_us : int;
  offered : int;  (** arrivals generated across all senders *)
  sent : int;  (** accepted into send queues *)
  shed : int;  (** offered - sent: shed at source (no buffer / queue full) *)
  delivered : int;  (** drained by receivers *)
  rx_drops : int;  (** engine discards: no posted receive buffer *)
  elapsed_us : float;  (** virtual time, first arrival to full drain *)
  offered_per_sec : float;
  delivered_per_sec : float;
  delivered_ratio : float;  (** delivered / offered; 1.0 when offered = 0 *)
  sojourn_us : Flipc_obs.Sketch.t;
  engines : (int * int * Flipc.Msg_engine.stats) list;
      (** (node, shard, counters), node-major then shard order — the
          deterministic per-shard snapshot *)
  violations : int;  (** online monitor violations; 0 when not attached *)
}

(** [run ~machine ...] drives the firehose on a pre-built machine whose
    nodes 0..senders-1 send and senders..senders+receivers-1 receive.
    Each node carries [streams] endpoint pairs (default 1): sender
    stream [(i, s)] targets receiver node [i mod receivers], stream [s].
    Because endpoint [g] is owned by engine shard [g mod shard_count],
    multiple streams are what spread a node's traffic across its shards.
    [arrivals k] makes the arrival process for global sender stream
    [k = i * streams + s]. Arrivals follow an absolute schedule — the
    next arrival instant advances by the drawn gap independent of how
    long servicing the previous one took — so the offered rate is set by
    the external clock, never by the system's own backpressure. Runs to
    full drain: every accepted message is delivered or counted as an
    engine drop before the clock stops. [monitor] attaches the online
    invariant monitor. *)
val run :
  machine:Flipc.Machine.t ->
  senders:int ->
  receivers:int ->
  duration_us:int ->
  arrivals:(int -> Arrivals.t) ->
  ?streams:int ->
  ?payload_bytes:int ->
  ?monitor:bool ->
  unit ->
  result

(** [measure ()] builds a [senders + receivers]-node mesh machine from
    [config] and runs. Deterministic for a fixed seed: the whole run is
    virtual-time, single-domain. *)
val measure :
  ?config:Flipc.Config.t ->
  ?monitor:bool ->
  senders:int ->
  receivers:int ->
  duration_us:int ->
  mean_gap_ns:int ->
  ?arrival:arrival ->
  ?seed:int ->
  ?streams:int ->
  ?payload_bytes:int ->
  unit ->
  result

(** {1 Wall-clock mode (opt-in; real OCaml 5 domains)} *)

type wall_result = {
  per_domain : result list;  (** each slice's deterministic virtual result *)
  wall_s : float;  (** host seconds for the whole fan-out *)
  wall_delivered_per_sec : float;
      (** total delivered / wall seconds — a host-parallelism figure, not
          a simulated-time one *)
  merged_sojourn_us : Flipc_obs.Sketch.t;
}

(** [measure_wallclock ~domains ...] splits the senders across [domains]
    OCaml domains, each running its own complete, independent machine
    (simulation state is never shared between domains, so each slice
    stays deterministic); only the wall-clock aggregate varies with the
    host. *)
val measure_wallclock :
  ?config:Flipc.Config.t ->
  ?monitor:bool ->
  domains:int ->
  senders:int ->
  receivers:int ->
  duration_us:int ->
  mean_gap_ns:int ->
  ?arrival:arrival ->
  ?seed:int ->
  ?streams:int ->
  ?payload_bytes:int ->
  unit ->
  wall_result
