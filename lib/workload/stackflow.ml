module Sim = Flipc_sim.Engine
module Vtime = Flipc_sim.Vtime
module Mailbox = Flipc_sim.Sync.Mailbox
module Machine = Flipc.Machine
module Api = Flipc.Api
module Config = Flipc.Config
module Monitor = Flipc_obs.Monitor
module Transport = Flipc_flow.Transport
module CT = Flipc_flow.Channel_transport
module WL = Flipc_flow.Window_layer.Make (CT)
module RC = Flipc_flow.Retrans_layer.Make (CT)
module RW = Flipc_flow.Retrans_layer.Make (WL)

type stack =
  | Bare_channel
  | Window_over_channel
  | Retrans_over_channel
  | Retrans_over_window

let stack_name = function
  | Bare_channel -> "channel"
  | Window_over_channel -> "window/channel"
  | Retrans_over_channel -> "retrans/channel"
  | Retrans_over_window -> "retrans/window/channel"

type result = {
  expected : int;
  delivered : int;
  retransmits : int;
  corrupt_leaks : int;
  transport_drops : int;
  watchdogs_expired : int;
  monitor_violations : int;
  clean : bool;
}

(* Verified payloads: deterministic per (flow, index) so the receiver
   needs no side channel to detect corruption or misordering. *)
let payload_of ~flow ~idx ~bytes =
  Bytes.init bytes (fun j -> Char.chr (((flow * 131) + (idx * 31) + j) land 0xff))

let terr = function
  | Ok v -> v
  | Error e -> failwith ("Stackflow: " ^ Transport.error_to_string e)

(* The generic flow driver: everything below is written once against
   {!Transport.S} and reused by every composition. The [rx_done] /
   [tx_done] flags are simulation-harness knowledge, not protocol: the
   sender keeps the protocol machine turning (retransmissions, acks)
   until the receiver attests it has everything, and the receiver
   lingers re-acknowledging duplicates until the sender has stood
   down — a dropped final ack must not strand either side. *)
type shared = { mutable rx_done : bool; mutable tx_done : bool }

module Drive (T : Transport.S) = struct
  let tx conn ~wd ~stall ~messages ~flow ~bytes ~pace_ns ~attempt_ns ~shared =
    for i = 1 to messages do
      let rec push () =
        match
          T.send conn ~deadline:(T.now conn + attempt_ns)
            (payload_of ~flow ~idx:i ~bytes)
        with
        | Ok () -> Monitor.Watchdog.progress wd
        | Error `Timeout ->
            if Monitor.Watchdog.expired wd then stall wd;
            push ()
        | Error e -> failwith ("Stackflow: " ^ Transport.error_to_string e)
      in
      push ();
      Sim.delay pace_ns
    done;
    while not shared.rx_done do
      terr (T.pump conn);
      if Monitor.Watchdog.expired wd then stall wd;
      T.idle conn
    done;
    shared.tx_done <- true

  let rx conn ~wd ~stall ~messages ~flow ~bytes ~on_delivered ~on_leak ~shared
      =
    let got = ref 0 in
    while !got < messages do
      match T.recv conn with
      | Ok (Some p) ->
          Monitor.Watchdog.progress wd;
          incr got;
          if not (Bytes.equal p (payload_of ~flow ~idx:!got ~bytes)) then
            on_leak ();
          on_delivered ()
      | Ok None ->
          if Monitor.Watchdog.expired wd then stall wd;
          T.idle conn
      | Error e -> failwith ("Stackflow: " ^ Transport.error_to_string e)
    done;
    shared.rx_done <- true;
    Monitor.Watchdog.progress wd;
    while (not shared.tx_done) && not (Monitor.Watchdog.expired wd) do
      (match T.recv conn with Ok _ -> () | Error _ -> shared.tx_done <- true);
      T.idle conn
    done
end

let run ?(stack = Retrans_over_channel) ?fault ?fault_links
    ?(cost = Flipc_memsim.Cost_model.paragon) ?(rto_ns = 200_000)
    ?(pace_ns = 25_000) ?(budget = Vtime.ms 50) ?(window = 6)
    ?(payload_bytes = 32) ~kind ~nodes ~messages () =
  if nodes < 2 then invalid_arg "Stackflow: nodes < 2";
  if messages < 1 then invalid_arg "Stackflow: messages < 1";
  let config =
    {
      (Flipc_flow.Provision.config_for ~base:Config.default ~buffers:16) with
      Config.frame_checksum = true;
    }
  in
  let machine = Machine.create ~config ~cost ?fault ?fault_links kind () in
  let mon = Machine.attach_monitor machine in
  let sim = Machine.sim machine in
  let rcfg =
    {
      Flipc_flow.Retrans_layer.default_config with
      Flipc_flow.Retrans_layer.rto_ns;
      max_rto_ns = 8 * rto_ns;
    }
  in
  let half = nodes / 2 in
  let delivered = ref 0
  and retransmits = ref 0
  and corrupt_leaks = ref 0
  and transport_drops = ref 0
  and stalled = ref 0 in
  let stall wd =
    failwith
      (Printf.sprintf "watchdog '%s' expired" (Monitor.Watchdog.name wd))
  in
  let attempt_ns = 4 * rto_ns in
  (* One driver per composition; the existential packs the wrapped
     connection type with its driver and retransmit counter so the
     per-flow wiring below stays stack-agnostic. *)
  let drive : type a.
      (module Transport.S with type t = a) ->
      wrap:(CT.t -> a) ->
      retrans_of:(a -> int) ->
      unit =
   fun (module T) ~wrap ~retrans_of ->
    let module D = Drive (T) in
    for flow = 0 to nodes - 1 do
      let src = flow and dst = (flow + half) mod nodes in
      let src_addr = Mailbox.create () and dst_addr = Mailbox.create () in
      let wname dir = Printf.sprintf "stack-%d-%s" flow dir in
      let shared = { rx_done = false; tx_done = false } in
      Machine.spawn_app ~name:(wname "rx") ~cpu:1 machine ~node:dst
        (fun api ->
          let base = terr (CT.create api ~pool:4 ~depth:8 ()) in
          Mailbox.put dst_addr (CT.address base);
          terr (CT.connect base (Mailbox.take src_addr));
          let conn = wrap base in
          let wd = Monitor.Watchdog.create ~budget ~sim ~name:(wname "rx") () in
          let bytes = min payload_bytes (T.capacity conn) in
          D.rx conn ~wd ~stall ~messages ~flow ~bytes
            ~on_delivered:(fun () -> incr delivered)
            ~on_leak:(fun () -> incr corrupt_leaks)
            ~shared;
          transport_drops := !transport_drops + CT.drops base);
      Machine.spawn_app ~name:(wname "tx") ~cpu:0 machine ~node:src
        (fun api ->
          let base = terr (CT.create api ~pool:4 ~depth:8 ()) in
          Mailbox.put src_addr (CT.address base);
          terr (CT.connect base (Mailbox.take dst_addr));
          let conn = wrap base in
          let wd = Monitor.Watchdog.create ~budget ~sim ~name:(wname "tx") () in
          let bytes = min payload_bytes (T.capacity conn) in
          Fun.protect
            ~finally:(fun () ->
              retransmits := !retransmits + retrans_of conn;
              transport_drops := !transport_drops + CT.drops base)
            (fun () ->
              D.tx conn ~wd ~stall ~messages ~flow ~bytes ~pace_ns ~attempt_ns
                ~shared))
    done
  in
  (match stack with
  | Bare_channel ->
      drive (module CT) ~wrap:(fun c -> c) ~retrans_of:(fun _ -> 0)
  | Window_over_channel ->
      drive
        (module WL)
        ~wrap:(fun c -> WL.create c ~window ())
        ~retrans_of:(fun _ -> 0)
  | Retrans_over_channel ->
      drive
        (module RC)
        ~wrap:(fun c -> RC.create c ~config:rcfg ())
        ~retrans_of:RC.retransmits
  | Retrans_over_window ->
      drive
        (module RW)
        ~wrap:(fun c -> RW.create (WL.create c ~window ()) ~config:rcfg ())
        ~retrans_of:RW.retransmits);
  (* A Process_failure kills exactly one flow process; keep running so
     the other flows finish and the cell reports how far it got. *)
  let rec run_all stopping =
    match
      if stopping then Machine.stop_engines machine;
      Machine.run machine
    with
    | () -> if not stopping then run_all true
    | exception Sim.Process_failure (_, _) ->
        incr stalled;
        run_all stopping
  in
  run_all false;
  let expected = nodes * messages in
  let violations = List.length (Monitor.violations mon) in
  let clean =
    Monitor.clean mon && !stalled = 0 && !delivered = expected
    && !corrupt_leaks = 0
  in
  {
    expected;
    delivered = !delivered;
    retransmits = !retransmits;
    corrupt_leaks = !corrupt_leaks;
    transport_drops = !transport_drops;
    watchdogs_expired = !stalled;
    monitor_violations = violations;
    clean;
  }
