(** Layered-stack soak flows: all-to-all traffic over a composed
    {!Flipc_flow.Transport} stack, with exactly-once verification.

    Where {!Flipc_flow.Retrans} soaks exercise the endpoint-pair
    modules, this workload drives the {e stacked} implementations —
    {!Flipc_flow.Channel_transport} at the base with
    {!Flipc_flow.Retrans_layer} / {!Flipc_flow.Window_layer} functors
    above — through a faulted machine: node [i] streams [messages]
    verified payloads to node [(i + n/2) mod n], every node both
    sending and receiving, with an invariant monitor attached and a
    virtual-time watchdog per flow.

    Receivers check every delivered payload against the pattern the
    sender wrote and require strict in-order, exactly-once delivery;
    [corrupt_leaks] counts mismatches (must stay zero — the frame
    checksum turns wire corruption into loss, and the reliability
    layer recovers loss). *)

(** Which composition to run. [Bare_channel] and [Window_over_channel]
    give no delivery guarantee under faults — run them on clean
    fabrics; the [Retrans_*] stacks must deliver exactly-once under
    any fault mix. *)
type stack =
  | Bare_channel
  | Window_over_channel
  | Retrans_over_channel
  | Retrans_over_window

val stack_name : stack -> string

type result = {
  expected : int;
  delivered : int;
  retransmits : int;  (** 0 for stacks without a retransmission layer *)
  corrupt_leaks : int;  (** delivered payloads that failed verification *)
  transport_drops : int;  (** optimistic discards at base receive endpoints *)
  watchdogs_expired : int;
  monitor_violations : int;
  clean : bool;
      (** all delivered, nothing corrupt, no stall, monitor clean *)
}

(** [run ~kind ~nodes ~messages ()] builds the machine (frame checksum
    on), runs [nodes] flows over the chosen [stack] and returns the
    tally.

    @param stack default [Retrans_over_channel]
    @param fault fabric-wide fault injection (default none)
    @param fault_links per-link fault overrides
    @param cost memory cost model (default paragon)
    @param rto_ns retransmission timeout for the retrans layer
      (default 200us; set above the fabric round trip)
    @param pace_ns inter-message virtual delay per sender (default 25us)
    @param budget per-flow watchdog budget (default 50ms)
    @param window window size for the window layer (default 6)
    @param payload_bytes verified payload size (default 32, clamped to
      the stack's capacity) *)
val run :
  ?stack:stack ->
  ?fault:Flipc_net.Faulty.config ->
  ?fault_links:Flipc_net.Faulty.links ->
  ?cost:Flipc_memsim.Cost_model.t ->
  ?rto_ns:int ->
  ?pace_ns:int ->
  ?budget:Flipc_sim.Vtime.t ->
  ?window:int ->
  ?payload_bytes:int ->
  kind:Flipc.Machine.fabric_kind ->
  nodes:int ->
  messages:int ->
  unit ->
  result
