(* Open-loop sustained-load generator (DESIGN.md §16).

   M sender nodes push at N receiver nodes on one mesh. Arrivals are an
   external clock (Poisson by default): each sender draws inter-arrival
   gaps from {!Arrivals} and offers a message at every tick whether or
   not the system kept up — when no free buffer is available (the engine
   hasn't drained the queue) the arrival is shed at the source and
   counted, never blocked on. Offered vs delivered rate is therefore a
   real throughput measurement, not a closed-loop echo of the system's
   own backpressure.

   The hot path follows the configured batching knobs: senders stage
   arrivals and flush with {!Api.send_burst} every [app_send_burst]
   messages (one doorbell ring + one engine poke per flush); receivers
   drain with {!Api.receive_burst} / repost with [post_receive_burst] in
   runs of [app_recv_burst]. All knobs at 1 degenerate to the singleton
   ablation path.

   Sojourn: each message carries its send-side arrival stamp (virtual ns,
   first 8 payload bytes); the receiver observes [now - stamp] into a
   {!Flipc_obs.Sketch} at drain time, so the quantiles include queueing,
   batching delay, wire time and drain latency — the full open-loop
   sojourn, which is the honest number under saturation. *)

module Sim = Flipc_sim.Engine
module Mem_port = Flipc_memsim.Mem_port
module Machine = Flipc.Machine
module Api = Flipc.Api
module Config = Flipc.Config
module Nameservice = Flipc.Nameservice
module Endpoint_kind = Flipc.Endpoint_kind
module Msg_engine = Flipc.Msg_engine
module Sketch = Flipc_obs.Sketch

type arrival =
  [ `Poisson | `Periodic | `Jittered of float | `Bursty of int ]

type result = {
  senders : int;
  receivers : int;
  duration_us : int;
  offered : int;  (** arrivals generated across all senders *)
  sent : int;  (** accepted into send queues *)
  shed : int;  (** offered - sent: shed at source (no buffer / queue full) *)
  delivered : int;  (** drained by receivers *)
  rx_drops : int;  (** engine discards: no posted receive buffer *)
  elapsed_us : float;  (** virtual time from first arrival to full drain *)
  offered_per_sec : float;
  delivered_per_sec : float;
  delivered_ratio : float;  (** delivered / offered; 1.0 when offered = 0 *)
  sojourn_us : Sketch.t;
  engines : (int * int * Msg_engine.stats) list;
      (** (node, shard, counters), node-major then shard order *)
  violations : int;  (** online monitor violations; 0 when not attached *)
}

let ok = function
  | Ok v -> v
  | Error e -> failwith ("Firehose: " ^ Api.error_to_string e)

let make_arrivals arrival ~mean_gap_ns ~seed i =
  let seed = seed + (7919 * i) in
  match arrival with
  | `Poisson -> Arrivals.poisson ~mean_ns:mean_gap_ns ~seed
  | `Periodic -> Arrivals.periodic ~period_ns:mean_gap_ns
  | `Jittered jitter -> Arrivals.jittered ~period_ns:mean_gap_ns ~jitter ~seed
  | `Bursty burst ->
      (* Same mean rate as the periodic process: [burst] back-to-back
         arrivals then an idle gap covering the rest of the period. *)
      Arrivals.bursty ~burst ~gap_ns:0 ~idle_ns:(burst * mean_gap_ns)

let stamp_bytes now =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int now);
  b

let run ~machine ~senders ~receivers ~duration_us ~arrivals ?(streams = 1)
    ?(payload_bytes = 32) ?(monitor = false) () =
  if senders < 1 then invalid_arg "Firehose.run: senders < 1";
  if receivers < 1 then invalid_arg "Firehose.run: receivers < 1";
  if streams < 1 then invalid_arg "Firehose.run: streams < 1";
  if payload_bytes < 8 then
    invalid_arg "Firehose.run: payload must hold an 8-byte stamp";
  if Machine.node_count machine < senders + receivers then
    invalid_arg "Firehose.run: machine too small for senders + receivers";
  let sim = Machine.sim machine in
  let config = Machine.config machine in
  if payload_bytes > Config.payload_bytes config then
    invalid_arg "Firehose.run: payload exceeds configured message size";
  if streams > config.Config.endpoints then
    invalid_arg "Firehose.run: more streams than endpoints per node";
  let mon = if monitor then Some (Machine.attach_monitor machine) else None in
  let ns = Machine.names machine in
  let qcap = config.Config.queue_capacity - 1 in
  let duration_ns = duration_us * 1_000 in
  let offered = ref 0
  and sent = ref 0
  and shed = ref 0
  and delivered = ref 0
  and rx_drops = ref 0 in
  let gen_done = ref 0 in
  let first_arrival = ref max_int in
  let stop = ref false in
  let stop_at = ref 0 in
  let sojourn = Sketch.create () in

  (* [streams] endpoint pairs per node: sender stream (i, s) targets
     receiver node [i mod receivers], stream [s]. With engine sharding
     on, a node's streams land on different shards ([g mod shard_count]),
     which is what gives every shard live work. *)
  for j = 0 to receivers - 1 do
    let node = senders + j in
    for s = 0 to streams - 1 do
      Machine.spawn_app ~name:(Printf.sprintf "fh-rx-%d.%d" j s) machine ~node
        (fun api ->
          let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ()) in
          for _ = 1 to qcap do
            ok (Api.post_receive api ep (ok (Api.allocate_buffer api)))
          done;
          Nameservice.register ns
            (Printf.sprintf "fh-%d.%d" j s)
            (Api.address api ep);
          let burst = min (max 1 config.Config.app_recv_burst) qcap in
          let out = Array.make burst (ok (Api.allocate_buffer api)) in
          Api.free_buffer api out.(0);
          while not !stop do
            let n = Api.receive_burst api ep ~out in
            if n = 0 then begin
              (* Bounded poll cadence so an idle stretch costs O(1)
                 events per poll, not a spin per instruction. *)
              Mem_port.instr (Api.port api) 5;
              Sim.delay 200
            end
            else begin
              let now = Sim.now sim in
              for i = 0 to n - 1 do
                let b = Api.read_payload api out.(i) 8 in
                let stamp = Int64.to_int (Bytes.get_int64_le b 0) in
                Sketch.observe sojourn (float_of_int (now - stamp) /. 1_000.)
              done;
              delivered := !delivered + n;
              ignore (ok (Api.post_receive_burst api ep (Array.sub out 0 n)))
            end;
            rx_drops := !rx_drops + Api.drops_read_and_reset api ep
          done)
    done
  done;

  for i = 0 to senders - 1 do
    for s = 0 to streams - 1 do
      Machine.spawn_app ~name:(Printf.sprintf "fh-tx-%d.%d" i s) machine
        ~node:i (fun api ->
          let ep = ok (Api.allocate_endpoint api ~kind:Endpoint_kind.Send ()) in
          Api.connect api ep
            (Nameservice.lookup ns
               (Printf.sprintf "fh-%d.%d" (i mod receivers) s));
          let burst = min (max 1 config.Config.app_send_burst) qcap in
          let free = Queue.create () in
          (* Enough pool to cover a full ring plus the staging burst;
             shed beyond that is the open-loop signal, not an artifact. *)
          let pool = qcap + burst in
          (try
             for _ = 1 to pool do
               match Api.allocate_buffer api with
               | Ok b -> Queue.push b free
               | Error _ -> raise Exit
             done
           with Exit -> ());
          if Queue.is_empty free then
            failwith "Firehose: no buffers for sender";
          let out = Array.make pool (Queue.peek free) in
          let pending = Array.make burst (Queue.peek free) in
          let npending = ref 0 in
          let flush () =
            if !npending > 0 then begin
              let n =
                ok (Api.send_burst api ep (Array.sub pending 0 !npending))
              in
              sent := !sent + n;
              (* Overflow stays ours: recycle it and count the shed. *)
              for k = n to !npending - 1 do
                shed := !shed + 1;
                Queue.push pending.(k) free
              done;
              npending := 0
            end
          in
          let arr = arrivals ((i * streams) + s) in
          let t0 = Sim.now sim in
          if t0 < !first_arrival then first_arrival := t0;
          let t_end = t0 + duration_ns in
          (* Absolute arrival schedule: the next arrival instant advances
             by the drawn gap regardless of how long the previous
             arrival's processing took; when processing falls behind, the
             loop catches up without delaying — that is what keeps the
             load open-loop (offered rate set by the clock, not by the
             system's own service time). *)
          let next = ref t0 in
          let continue = ref true in
          while !continue do
            next := !next + Arrivals.next_gap_ns arr;
            if !next >= t_end then continue := false
            else begin
              let now = Sim.now sim in
              if !next > now then Sim.delay (!next - now);
              incr offered;
              let n = Api.reclaim_burst api ep ~out in
              for k = 0 to n - 1 do
                Queue.push out.(k) free
              done;
              match Queue.take_opt free with
              | None -> incr shed
              | Some buf ->
                  (* Stamped with the scheduled arrival instant, so the
                     sojourn includes generator backlog wait. *)
                  Api.write_payload api buf (stamp_bytes !next);
                  pending.(!npending) <- buf;
                  incr npending;
                  if !npending >= burst then flush ()
            end
          done;
          flush ();
          incr gen_done)
    done
  done;

  (* Coordinator: once every sender has stopped generating and every
     accepted message is accounted for (drained or counted as an engine
     drop), raise the stop flag — receivers exit, engines park, the run
     terminates. In-flight messages only delay the condition, never break
     it: the fabric is clean, so sent = delivered + rx_drops at drain. *)
  Sim.spawn ~name:"fh-coordinator" sim (fun () ->
      Sim.delay duration_ns;
      while not !stop do
        Sim.delay 2_000;
        if !gen_done = senders * streams && !delivered + !rx_drops >= !sent
        then begin
          stop := true;
          stop_at := Sim.now sim
        end
      done);

  Machine.run machine;
  Machine.stop_engines machine;
  Machine.run machine;
  let engines =
    List.concat_map
      (fun i ->
        List.map
          (fun e -> (i, Msg_engine.shard e, Msg_engine.stats e))
          (Machine.msg_engines (Machine.node machine i)))
      (List.init (Machine.node_count machine) Fun.id)
  in
  let start = if !first_arrival = max_int then 0 else !first_arrival in
  let elapsed_us = float_of_int (max 0 (!stop_at - start)) /. 1_000. in
  let secs = elapsed_us /. 1e6 in
  let dur_secs = float_of_int duration_us /. 1e6 in
  {
    senders;
    receivers;
    duration_us;
    offered = !offered;
    sent = !sent;
    shed = !shed;
    delivered = !delivered;
    rx_drops = !rx_drops;
    elapsed_us;
    offered_per_sec =
      (if dur_secs > 0. then float_of_int !offered /. dur_secs else 0.);
    delivered_per_sec =
      (if secs > 0. then float_of_int !delivered /. secs else 0.);
    delivered_ratio =
      (if !offered = 0 then 1.
       else float_of_int !delivered /. float_of_int !offered);
    sojourn_us = sojourn;
    engines;
    violations =
      (match mon with
      | Some m -> List.length (Flipc_obs.Monitor.violations m)
      | None -> 0);
  }

let measure ?(config = Config.default) ?(monitor = false) ~senders ~receivers
    ~duration_us ~mean_gap_ns ?(arrival = `Poisson) ?(seed = 42) ?(streams = 1)
    ?(payload_bytes = 32) () =
  let config = Config.validate_exn config in
  let machine =
    Machine.create ~config (Machine.Mesh { cols = senders + receivers; rows = 1 }) ()
  in
  run ~machine ~senders ~receivers ~duration_us
    ~arrivals:(make_arrivals arrival ~mean_gap_ns ~seed)
    ~streams ~payload_bytes ~monitor ()

(* Wall-clock mode: real OCaml 5 domains, opt-in. Each domain runs its
   own complete, independent machine (own simulation heap, own simulated
   memory, own observability) over a slice of the senders — the
   cooperative single-writer simulation is never shared across domains,
   so determinism of each slice is preserved; only the wall-clock
   aggregate is timing-dependent, which is the point of the mode. *)

type wall_result = {
  per_domain : result list;
  wall_s : float;
  wall_delivered_per_sec : float;
  merged_sojourn_us : Sketch.t;
}

let measure_wallclock ?(config = Config.default) ?(monitor = false) ~domains
    ~senders ~receivers ~duration_us ~mean_gap_ns ?(arrival = `Poisson)
    ?(seed = 42) ?(streams = 1) ?(payload_bytes = 32) () =
  if domains < 1 then invalid_arg "Firehose.measure_wallclock: domains < 1";
  if domains > senders then
    invalid_arg "Firehose.measure_wallclock: more domains than senders";
  let slice d =
    (* Spread the senders as evenly as possible; every domain keeps the
       full receiver count so per-receiver load matches the virtual run
       scaled by its slice. *)
    let base = senders / domains and extra = senders mod domains in
    base + (if d < extra then 1 else 0)
  in
  let t0 = Unix.gettimeofday () in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            measure ~config ~monitor ~senders:(slice d) ~receivers
              ~duration_us ~mean_gap_ns ~arrival
              ~seed:(seed + (104_729 * d))
              ~streams ~payload_bytes ()))
  in
  let per_domain = List.map Domain.join workers in
  let wall_s = Unix.gettimeofday () -. t0 in
  let merged = Sketch.create () in
  List.iter (fun r -> Sketch.merge ~into:merged r.sojourn_us) per_domain;
  let delivered = List.fold_left (fun a r -> a + r.delivered) 0 per_domain in
  {
    per_domain;
    wall_s;
    wall_delivered_per_sec =
      (if wall_s > 0. then float_of_int delivered /. wall_s else 0.);
    merged_sojourn_us = merged;
  }
