module Engine = Flipc_sim.Engine
module Shared_mem = Flipc_memsim.Shared_mem
module Bus = Flipc_memsim.Bus

type stats = {
  mutable transfers : int;
  mutable bytes : int;
  mutable hidden_stall_ns : int;
}

type t = {
  engine : Engine.t;
  mem : Shared_mem.t;
  bus : Bus.t;
  setup_ns : int;
  ns_per_byte : float;
  stats : stats;
}

let create ~engine ~mem ~bus ~setup_ns ~ns_per_byte =
  {
    engine;
    mem;
    bus;
    setup_ns;
    ns_per_byte;
    stats = { transfers = 0; bytes = 0; hidden_stall_ns = 0 };
  }

let stats t = t.stats

let charge ?(setup = true) t len =
  t.stats.transfers <- t.stats.transfers + 1;
  t.stats.bytes <- t.stats.bytes + len;
  Engine.delay
    ((if setup then t.setup_ns else 0)
    + int_of_float (Float.round (float_of_int len *. t.ns_per_byte)))

let read ?setup t ~pos ~len =
  charge ?setup t len;
  let stall = Bus.dma_access t.bus ~write:false ~addr:pos ~len in
  t.stats.hidden_stall_ns <- t.stats.hidden_stall_ns + stall;
  Shared_mem.read_bytes t.mem ~pos ~len

let write ?setup t ~pos data =
  let len = Bytes.length data in
  charge ?setup t len;
  let stall = Bus.dma_access t.bus ~write:true ~addr:pos ~len in
  t.stats.hidden_stall_ns <- t.stats.hidden_stall_ns + stall;
  Shared_mem.write_bytes t.mem ~pos data
