module Engine = Flipc_sim.Engine
module Prng = Flipc_sim.Prng

type config = {
  drop : float;
  duplicate : float;
  reorder : float;
  reorder_hold_ns : int;
  jitter_ns : int;
  seed : int;
}

let none =
  {
    drop = 0.0;
    duplicate = 0.0;
    reorder = 0.0;
    reorder_hold_ns = 50_000;
    jitter_ns = 0;
    seed = 1;
  }

let config ?(drop = 0.0) ?(duplicate = 0.0) ?(reorder = 0.0)
    ?(reorder_hold_ns = 50_000) ?(jitter_ns = 0) ?(seed = 1) () =
  { drop; duplicate; reorder; reorder_hold_ns; jitter_ns; seed }

type stats = {
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable delayed : int;
}

(* Keyed on the shared Fabric.stats record by physical identity, like
   Mesh.contention_stall_ns: the record is mutable so it cannot be a hash
   key. The key is held weakly so a dead machine's fabric does not pin
   its tally forever, dead entries are swept on every [wrap], and a hard
   cap bounds the table even when stats records stay strongly rooted
   elsewhere (e.g. Mesh's contention table). Wrapping the same inner
   fabric twice finds one entry: both layers tally into it, so
   [stats_of] stays unambiguous instead of answering for whichever wrap
   registered last. *)
type entry = { key : Fabric.stats Weak.t; tally : stats }

let registry : entry list ref = ref []
let registry_cap = 64
let entry_key e = Weak.get e.key 0
let sweep () = registry := List.filter (fun e -> entry_key e <> None) !registry

let registry_size () =
  sweep ();
  List.length !registry

let find_entry stats =
  List.find_opt
    (fun e -> match entry_key e with Some s -> s == stats | None -> false)
    !registry

let stats_of (fabric : Fabric.t) =
  Option.map (fun e -> e.tally) (find_entry fabric.Fabric.stats)

let validate_prob name p =
  if p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "Faulty.wrap: %s not in [0,1]" name)

let wrap ~engine ~config:c ?obs (inner : Fabric.t) =
  validate_prob "drop" c.drop;
  validate_prob "duplicate" c.duplicate;
  validate_prob "reorder" c.reorder;
  if c.reorder_hold_ns < 0 || c.jitter_ns < 0 then
    invalid_arg "Faulty.wrap: negative delay bound";
  let rng = Prng.create ~seed:c.seed in
  sweep ();
  let stats =
    match find_entry inner.Fabric.stats with
    | Some e -> e.tally (* double wrap: merge into the existing tally *)
    | None ->
        let tally =
          { dropped = 0; duplicated = 0; reordered = 0; delayed = 0 }
        in
        let key = Weak.create 1 in
        Weak.set key 0 (Some inner.Fabric.stats);
        registry := { key; tally } :: !registry;
        if List.length !registry > registry_cap then
          registry := List.filteri (fun i _ -> i < registry_cap) !registry;
        tally
  in
  (match obs with
  | Some o ->
      let m = Flipc_obs.Obs.metrics o in
      let probe name f =
        Flipc_obs.Metrics.probe m ("fabric.faults." ^ name) (fun () ->
            float_of_int (f ()))
      in
      probe "dropped" (fun () -> stats.dropped);
      probe "duplicated" (fun () -> stats.duplicated);
      probe "reordered" (fun () -> stats.reordered);
      probe "delayed" (fun () -> stats.delayed)
  | None -> ());
  (* FLIPC packets carry the wire image as payload, whose second word is
     the stamped causal message id (lib/net cannot see Flipc.Msg_buffer,
     so the layout knowledge — id in bits 2.. of the little-endian word
     at byte 4 — is duplicated here). Other protocols get id 0. *)
  let mid_of (p : Packet.t) =
    let payload = p.Packet.payload in
    if p.Packet.protocol = Packet.Flipc && Bytes.length payload >= 8 then
      (Int32.to_int (Bytes.get_int32_le payload 4) land 0x3FFF_FFFF) lsr 2
    else 0
  in
  let fault kind (p : Packet.t) =
    match obs with
    | Some o when Flipc_obs.Obs.tracing o ->
        Flipc_obs.Obs.event o
          (Flipc_obs.Event.Fault { node = p.Packet.src; kind; mid = mid_of p })
    | _ -> ()
  in
  let fires p = p > 0.0 && Prng.float rng 1.0 < p in
  let submit p delay =
    if delay = 0 then inner.Fabric.send p
    else
      Engine.spawn_at ~name:"fault-delay" engine
        (Engine.now engine + delay)
        (fun () -> inner.Fabric.send p)
  in
  let copy_delay p =
    let jitter =
      if c.jitter_ns > 0 then begin
        let d = Prng.int rng (c.jitter_ns + 1) in
        if d > 0 then begin
          stats.delayed <- stats.delayed + 1;
          fault Flipc_obs.Event.Fault_jitter p
        end;
        d
      end
      else 0
    in
    let hold =
      if fires c.reorder then begin
        stats.reordered <- stats.reordered + 1;
        fault Flipc_obs.Event.Fault_reorder p;
        1 + Prng.int rng (max 1 c.reorder_hold_ns)
      end
      else 0
    in
    jitter + hold
  in
  let send p =
    if fires c.drop then begin
      stats.dropped <- stats.dropped + 1;
      fault Flipc_obs.Event.Fault_drop p
    end
    else begin
      submit p (copy_delay p);
      if fires c.duplicate then begin
        stats.duplicated <- stats.duplicated + 1;
        fault Flipc_obs.Event.Fault_duplicate p;
        submit p (copy_delay p)
      end
    end
  in
  {
    Fabric.name = inner.Fabric.name ^ "+faults";
    node_count = inner.Fabric.node_count;
    send;
    set_handler = inner.Fabric.set_handler;
    stats = inner.Fabric.stats;
  }
