module Engine = Flipc_sim.Engine
module Prng = Flipc_sim.Prng

type ge = {
  p_good_bad : float;
  p_bad_good : float;
  drop_good : float;
  drop_bad : float;
}

let burst ?(p_good_bad = 0.01) ?(p_bad_good = 0.25) ?(drop_good = 0.0)
    ?(drop_bad = 0.5) () =
  { p_good_bad; p_bad_good; drop_good; drop_bad }

type config = {
  drop : float;
  duplicate : float;
  reorder : float;
  reorder_hold_ns : int;
  jitter_ns : int;
  corrupt : float;
  burst : ge option;
  seed : int;
}

let none =
  {
    drop = 0.0;
    duplicate = 0.0;
    reorder = 0.0;
    reorder_hold_ns = 50_000;
    jitter_ns = 0;
    corrupt = 0.0;
    burst = None;
    seed = 1;
  }

let config ?(drop = 0.0) ?(duplicate = 0.0) ?(reorder = 0.0)
    ?(reorder_hold_ns = 50_000) ?(jitter_ns = 0) ?(corrupt = 0.0) ?burst
    ?(seed = 1) () =
  { drop; duplicate; reorder; reorder_hold_ns; jitter_ns; corrupt; burst; seed }

type links = src:int -> dst:int -> config option

type stats = {
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable delayed : int;
  mutable corrupted : int;
  mutable burst_dropped : int;
  mutable ge_good_pkts : int;
  mutable ge_bad_pkts : int;
  mutable ge_bursts : int;
}

(* Keyed on the shared Fabric.stats record by physical identity, like
   Mesh.contention_stall_ns: the record is mutable so it cannot be a hash
   key. The key is held weakly so a dead machine's fabric does not pin
   its tally forever, dead entries are swept on every [wrap], and a hard
   cap bounds the table even when stats records stay strongly rooted
   elsewhere (e.g. Mesh's contention table). Wrapping the same inner
   fabric twice finds one entry: both layers tally into it, so
   [stats_of] stays unambiguous instead of answering for whichever wrap
   registered last. *)
type entry = { key : Fabric.stats Weak.t; tally : stats }

let registry : entry list ref = ref []
let registry_cap = 64
let entry_key e = Weak.get e.key 0
let sweep () = registry := List.filter (fun e -> entry_key e <> None) !registry

let registry_size () =
  sweep ();
  List.length !registry

let find_entry stats =
  List.find_opt
    (fun e -> match entry_key e with Some s -> s == stats | None -> false)
    !registry

let stats_of (fabric : Fabric.t) =
  Option.map (fun e -> e.tally) (find_entry fabric.Fabric.stats)

let validate_prob name p =
  if p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "Faulty.wrap: %s not in [0,1]" name)

let validate_config c =
  validate_prob "drop" c.drop;
  validate_prob "duplicate" c.duplicate;
  validate_prob "reorder" c.reorder;
  validate_prob "corrupt" c.corrupt;
  (match c.burst with
  | Some g ->
      validate_prob "burst.p_good_bad" g.p_good_bad;
      validate_prob "burst.p_bad_good" g.p_bad_good;
      validate_prob "burst.drop_good" g.drop_good;
      validate_prob "burst.drop_bad" g.drop_bad
  | None -> ());
  if c.reorder_hold_ns < 0 || c.jitter_ns < 0 then
    invalid_arg "Faulty.wrap: negative delay bound"

(* One fault lane: the per-fault PRNG streams plus the Gilbert–Elliott
   channel state for one configuration (fabric-wide, or one (src,dst)
   link override). Every fault kind draws from its own splitmix64 stream,
   derived from the lane seed in a fixed order, so changing one fault's
   probability can never shift the values another fault's decisions see —
   seeded runs stay comparable across configs. The duplicate copy's
   delay draws get their own streams too, so enabling duplication does
   not perturb the primary copy's reorder/jitter sequence. *)
type lane = {
  lcfg : config;
  drop_rng : Prng.t;
  ge_rng : Prng.t;
  dup_rng : Prng.t;
  corrupt_rng : Prng.t;
  reorder_rng : Prng.t;
  jitter_rng : Prng.t;
  dup_reorder_rng : Prng.t;
  dup_jitter_rng : Prng.t;
  mutable ge_bad : bool;
}

let make_lane ~seed c =
  (* A zero hold cannot let anything overtake the held packet, so it
     disables reordering outright instead of counting no-op "reorders". *)
  let c = if c.reorder_hold_ns = 0 then { c with reorder = 0.0 } else c in
  let root = Prng.create ~seed in
  let drop_rng = Prng.split root in
  let ge_rng = Prng.split root in
  let dup_rng = Prng.split root in
  let corrupt_rng = Prng.split root in
  let reorder_rng = Prng.split root in
  let jitter_rng = Prng.split root in
  let dup_reorder_rng = Prng.split root in
  let dup_jitter_rng = Prng.split root in
  {
    lcfg = c;
    drop_rng;
    ge_rng;
    dup_rng;
    corrupt_rng;
    reorder_rng;
    jitter_rng;
    dup_reorder_rng;
    dup_jitter_rng;
    ge_bad = false;
  }

(* Mix the link endpoints into the per-link seed so two links sharing one
   override config still fault independently. *)
let link_seed base ~src ~dst =
  base lxor (((src + 1) * 0x9E3779B1) + ((dst + 1) * 0x85EBCA77))

let copy_packet (p : Packet.t) =
  { p with Packet.payload = Bytes.copy p.Packet.payload }

let wrap ~engine ~config:c ?links ?obs (inner : Fabric.t) =
  validate_config c;
  sweep ();
  let stats =
    match find_entry inner.Fabric.stats with
    | Some e -> e.tally (* double wrap: merge into the existing tally *)
    | None ->
        let tally =
          {
            dropped = 0;
            duplicated = 0;
            reordered = 0;
            delayed = 0;
            corrupted = 0;
            burst_dropped = 0;
            ge_good_pkts = 0;
            ge_bad_pkts = 0;
            ge_bursts = 0;
          }
        in
        let key = Weak.create 1 in
        Weak.set key 0 (Some inner.Fabric.stats);
        registry := { key; tally } :: !registry;
        if List.length !registry > registry_cap then
          registry := List.filteri (fun i _ -> i < registry_cap) !registry;
        tally
  in
  (match obs with
  | Some o ->
      let m = Flipc_obs.Obs.metrics o in
      let probe name f =
        Flipc_obs.Metrics.probe m ("fabric.faults." ^ name) (fun () ->
            float_of_int (f ()))
      in
      probe "dropped" (fun () -> stats.dropped);
      probe "duplicated" (fun () -> stats.duplicated);
      probe "reordered" (fun () -> stats.reordered);
      probe "delayed" (fun () -> stats.delayed);
      probe "corrupted" (fun () -> stats.corrupted);
      probe "burst_dropped" (fun () -> stats.burst_dropped);
      probe "ge_good_pkts" (fun () -> stats.ge_good_pkts);
      probe "ge_bad_pkts" (fun () -> stats.ge_bad_pkts);
      probe "ge_bursts" (fun () -> stats.ge_bursts)
  | None -> ());
  let base_lane = make_lane ~seed:c.seed c in
  (* Per-link override lanes, created on first use so the table only
     holds links the configuration actually singles out. *)
  let link_lanes : (int, lane) Hashtbl.t = Hashtbl.create 8 in
  let lane_for ~src ~dst =
    match links with
    | None -> base_lane
    | Some f -> (
        match f ~src ~dst with
        | None -> base_lane
        | Some lc -> (
            let k = (src lsl 20) lor (dst land 0xFFFFF) in
            match Hashtbl.find_opt link_lanes k with
            | Some lane -> lane
            | None ->
                validate_config lc;
                let lane =
                  make_lane ~seed:(link_seed lc.seed ~src ~dst) lc
                in
                Hashtbl.add link_lanes k lane;
                lane))
  in
  (* FLIPC packets carry the wire image as payload, whose second word is
     the stamped causal message id (lib/net cannot see Flipc.Msg_buffer,
     so the layout knowledge — id in bits 2.. of the little-endian word
     at byte 4 — is duplicated here). Other protocols get id 0. *)
  let mid_of (p : Packet.t) =
    let payload = p.Packet.payload in
    if p.Packet.protocol = Packet.Flipc && Bytes.length payload >= 8 then
      (Int32.to_int (Bytes.get_int32_le payload 4) land 0x3FFF_FFFF) lsr 2
    else 0
  in
  let fault kind (p : Packet.t) =
    match obs with
    | Some o when Flipc_obs.Obs.tracing o ->
        Flipc_obs.Obs.event o
          (Flipc_obs.Event.Fault { node = p.Packet.src; kind; mid = mid_of p })
    | _ -> ()
  in
  let draw rng p = Prng.float rng 1.0 < p in
  (* One Gilbert–Elliott step per packet: transition first, then the
     current state's drop rate decides. Exactly two draws per packet keep
     the chain's stream aligned across configs. *)
  let step_ge lane g =
    (if lane.ge_bad then begin
       if draw lane.ge_rng g.p_bad_good then lane.ge_bad <- false
     end
     else if draw lane.ge_rng g.p_good_bad then begin
       lane.ge_bad <- true;
       stats.ge_bursts <- stats.ge_bursts + 1
     end);
    if lane.ge_bad then begin
      stats.ge_bad_pkts <- stats.ge_bad_pkts + 1;
      draw lane.ge_rng g.drop_bad
    end
    else begin
      stats.ge_good_pkts <- stats.ge_good_pkts + 1;
      draw lane.ge_rng g.drop_good
    end
  in
  (* A delayed submission holds a private copy: the caller (or a fault on
     another copy) may touch the payload bytes between scheduling and the
     deferred send, and the held packet must not see that. *)
  let submit p delay =
    if delay = 0 then inner.Fabric.send p
    else
      let held = copy_packet p in
      Engine.spawn_at ~name:"fault-delay" engine
        (Engine.now engine + delay)
        (fun () -> inner.Fabric.send held)
  in
  let copy_delay lane ~reorder_rng ~jitter_rng p =
    let c = lane.lcfg in
    let jitter =
      if c.jitter_ns > 0 then begin
        let d = Prng.int jitter_rng (c.jitter_ns + 1) in
        if d > 0 then begin
          stats.delayed <- stats.delayed + 1;
          fault Flipc_obs.Event.Fault_jitter p
        end;
        d
      end
      else 0
    in
    let hold =
      if draw reorder_rng c.reorder then begin
        stats.reordered <- stats.reordered + 1;
        fault Flipc_obs.Event.Fault_reorder p;
        1 + Prng.int reorder_rng c.reorder_hold_ns
      end
      else 0
    in
    jitter + hold
  in
  (* Flip 1–3 seeded bits in a fresh copy of the wire image. Mutating a
     copy keeps the caller's bytes (and any duplicate) intact — only this
     transmission is damaged, as on a real wire. *)
  let corrupted_copy lane (p : Packet.t) =
    let bytes = Bytes.copy p.Packet.payload in
    let nbits = Bytes.length bytes * 8 in
    if nbits > 0 then begin
      let flips = 1 + Prng.int lane.corrupt_rng 3 in
      for _ = 1 to flips do
        let bit = Prng.int lane.corrupt_rng nbits in
        let byte = bit lsr 3 in
        let mask = 1 lsl (bit land 7) in
        Bytes.set bytes byte
          (Char.chr (Char.code (Bytes.get bytes byte) lxor mask))
      done
    end;
    { p with Packet.payload = bytes }
  in
  let send (p : Packet.t) =
    let lane = lane_for ~src:p.Packet.src ~dst:p.Packet.dst in
    let c = lane.lcfg in
    (* Sample every fault decision unconditionally, each from its own
       stream, before acting on any of them: a fired drop must not
       short-circuit (and thereby shift) the other faults' draws. *)
    let uniform_drop = draw lane.drop_rng c.drop in
    let ge_drop =
      match c.burst with None -> false | Some g -> step_ge lane g
    in
    let duplicate = draw lane.dup_rng c.duplicate in
    let corrupt_now = draw lane.corrupt_rng c.corrupt in
    if uniform_drop || ge_drop then begin
      if uniform_drop then stats.dropped <- stats.dropped + 1
      else stats.burst_dropped <- stats.burst_dropped + 1;
      fault Flipc_obs.Event.Fault_drop p
    end
    else begin
      let first =
        if corrupt_now then begin
          stats.corrupted <- stats.corrupted + 1;
          fault Flipc_obs.Event.Fault_corrupt p;
          corrupted_copy lane p
        end
        else p
      in
      submit first
        (copy_delay lane ~reorder_rng:lane.reorder_rng
           ~jitter_rng:lane.jitter_rng first);
      if duplicate then begin
        stats.duplicated <- stats.duplicated + 1;
        fault Flipc_obs.Event.Fault_duplicate p;
        (* The duplicate is an independent clean copy of the original:
           shared payload bytes would let one copy's corruption bleed
           into the other. *)
        let dup = copy_packet p in
        submit dup
          (copy_delay lane ~reorder_rng:lane.dup_reorder_rng
             ~jitter_rng:lane.dup_jitter_rng dup)
      end
    end
  in
  {
    Fabric.name = inner.Fabric.name ^ "+faults";
    node_count = inner.Fabric.node_count;
    send;
    set_handler = inner.Fabric.set_handler;
    stats = inner.Fabric.stats;
  }
