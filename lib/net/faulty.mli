(** Fault-injecting fabric wrapper.

    Every concrete fabric here ({!Mesh}, {!Ethernet}, {!Scsi_bus},
    {!Hypercube}) is perfectly reliable, which leaves the optimistic
    transport's whole recovery story — drop counters, flow-control
    libraries, retransmission ({!Flipc_flow.Retrans}) — untested. [wrap]
    interposes on an underlying fabric's [send] and injects configurable,
    PRNG-seeded faults before the packet reaches the wire:

    - {b drop}: the packet silently vanishes;
    - {b duplicate}: a second copy is submitted;
    - {b reorder}: the packet is held back for a random interval so later
      packets overtake it;
    - {b latency jitter}: a small random delay on every surviving packet.

    Faults are sampled per packet from a dedicated splitmix64 stream, so
    runs are exactly reproducible for a given seed. The wrapper shares the
    underlying fabric's {!Fabric.stats} record (only packets that actually
    reach the wire are counted there); injected faults are tallied
    separately in {!stats}. *)

type config = {
  drop : float;  (** probability a packet is dropped, in [0,1] *)
  duplicate : float;  (** probability a packet is sent twice *)
  reorder : float;  (** probability a packet is held back *)
  reorder_hold_ns : int;
      (** maximum hold time for reordered packets; must exceed the
          fabric's typical latency for overtaking to actually occur *)
  jitter_ns : int;  (** maximum extra per-packet latency, 0 = none *)
  seed : int;  (** PRNG seed for the fault stream *)
}

(** No faults: [wrap ~config:none] is a transparent pass-through. *)
val none : config

(** [config ?drop ?duplicate ?reorder ?jitter_ns ?seed ()] builds a
    configuration with unspecified fields at their fault-free defaults. *)
val config :
  ?drop:float ->
  ?duplicate:float ->
  ?reorder:float ->
  ?reorder_hold_ns:int ->
  ?jitter_ns:int ->
  ?seed:int ->
  unit ->
  config

type stats = {
  mutable dropped : int;  (** packets discarded before the wire *)
  mutable duplicated : int;  (** extra copies injected *)
  mutable reordered : int;  (** packets held back *)
  mutable delayed : int;  (** packets given nonzero jitter *)
}

(** [wrap ~engine ~config fabric] is a fabric with [fabric]'s name,
    node count and handler table, whose [send] injects faults. With
    [?obs], the tally is exported as [fabric.faults.*] pull-probes and
    each injected fault emits a typed [Fault] trace event (attributed to
    the sending node). *)
val wrap :
  engine:Flipc_sim.Engine.t ->
  config:config ->
  ?obs:Flipc_obs.Obs.t ->
  Fabric.t ->
  Fabric.t

(** [stats_of fabric] finds the fault tally of a wrapped fabric (matched
    through the shared stats record, so both the wrapper and the underlying
    fabric resolve), or [None] for an unwrapped fabric. Wrapping the same
    inner fabric more than once merges every layer's faults into a single
    tally, so the answer does not depend on wrap order. *)
val stats_of : Fabric.t -> stats option

(** Live entries in the internal fabric→tally registry. Dead fabrics are
    swept (the key is weak) and the table is hard-capped, so this stays
    bounded across arbitrarily many machine creations; exposed for the
    regression tests. *)
val registry_size : unit -> int
