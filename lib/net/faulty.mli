(** Fault-injecting fabric wrapper.

    Every concrete fabric here ({!Mesh}, {!Ethernet}, {!Scsi_bus},
    {!Hypercube}) is perfectly reliable, which leaves the optimistic
    transport's whole recovery story — drop counters, flow-control
    libraries, retransmission ({!Flipc_flow.Retrans}), the frame checksum
    — untested. [wrap] interposes on an underlying fabric's [send] and
    injects configurable, PRNG-seeded faults before the packet reaches
    the wire:

    - {b drop}: the packet silently vanishes (uniform i.i.d.);
    - {b burst drop}: a two-state Gilbert–Elliott channel — a Markov
      chain over \{good, bad\} states with per-state drop rates — models
      correlated loss: once the channel turns bad, drops cluster into
      bursts instead of scattering uniformly;
    - {b duplicate}: a second, independent copy is submitted;
    - {b reorder}: the packet is held back for a random interval so later
      packets overtake it;
    - {b latency jitter}: a small random delay on every surviving packet;
    - {b corrupt}: 1–3 seeded bit flips in a copy of the wire image, so
      the damaged transmission reaches the receiver (where the frame
      checksum, when enabled, catches it) without touching the sender's
      bytes or any duplicate copy.

    Each fault kind draws from its own dedicated splitmix64 stream
    derived from the config seed, and every decision is sampled
    unconditionally per packet, so changing one fault's probability never
    shifts the values another fault's decisions see: seeded runs are
    exactly reproducible {e and} comparable across configs. With
    [?links], individual (src, dst) pairs can override the fabric-wide
    config — a single lossy, bursty or corrupting link in an otherwise
    clean fabric — each link on its own independent streams and its own
    Gilbert–Elliott state. The wrapper shares the underlying fabric's
    {!Fabric.stats} record (only packets that actually reach the wire are
    counted there); injected faults are tallied separately in {!stats}. *)

(** Two-state Gilbert–Elliott loss channel. Per packet the chain first
    takes one transition step, then drops with the current state's rate.
    Stationary bad-state occupancy is [p_good_bad /. (p_good_bad +.
    p_bad_good)]; mean bad-burst length in packets is [1. /. p_bad_good]. *)
type ge = {
  p_good_bad : float;  (** per-packet transition probability good→bad *)
  p_bad_good : float;  (** per-packet transition probability bad→good *)
  drop_good : float;  (** drop probability while in the good state *)
  drop_bad : float;  (** drop probability while in the bad state *)
}

(** [burst ()] builds a Gilbert–Elliott config; defaults give rare
    (1%/packet) transitions into a bad state that drops half its packets
    and lasts 4 packets on average. *)
val burst :
  ?p_good_bad:float ->
  ?p_bad_good:float ->
  ?drop_good:float ->
  ?drop_bad:float ->
  unit ->
  ge

type config = {
  drop : float;  (** probability a packet is dropped, in [0,1] *)
  duplicate : float;  (** probability a packet is sent twice *)
  reorder : float;  (** probability a packet is held back *)
  reorder_hold_ns : int;
      (** maximum hold time for reordered packets; must exceed the
          fabric's typical latency for overtaking to actually occur.
          A zero hold disables reordering entirely (nothing can overtake
          a packet held for 0 ns, so nothing is counted either). *)
  jitter_ns : int;  (** maximum extra per-packet latency, 0 = none *)
  corrupt : float;  (** probability of seeded bit flips in the image *)
  burst : ge option;  (** correlated loss channel, [None] = uniform only *)
  seed : int;  (** PRNG seed; every fault stream derives from it *)
}

(** No faults: [wrap ~config:none] is a transparent pass-through. *)
val none : config

(** [config ?drop ?duplicate ?reorder ?corrupt ?burst ?seed ()] builds a
    configuration with unspecified fields at their fault-free defaults. *)
val config :
  ?drop:float ->
  ?duplicate:float ->
  ?reorder:float ->
  ?reorder_hold_ns:int ->
  ?jitter_ns:int ->
  ?corrupt:float ->
  ?burst:ge ->
  ?seed:int ->
  unit ->
  config

(** Per-link fault overrides: [links ~src ~dst] returns [Some config] to
    fault that directed link specially, [None] to fall back to the
    fabric-wide config. Consulted per packet; override lanes are created
    lazily and keep their own PRNG streams and channel state, seeded from
    the override's seed mixed with (src, dst). *)
type links = src:int -> dst:int -> config option

type stats = {
  mutable dropped : int;  (** uniform drops (the [drop] rate) *)
  mutable duplicated : int;  (** extra copies injected *)
  mutable reordered : int;  (** packets held back *)
  mutable delayed : int;  (** packets given nonzero jitter *)
  mutable corrupted : int;  (** packets with flipped bits *)
  mutable burst_dropped : int;  (** drops from the Gilbert–Elliott chain *)
  mutable ge_good_pkts : int;  (** packets seen in the good state *)
  mutable ge_bad_pkts : int;  (** packets seen in the bad state *)
  mutable ge_bursts : int;  (** good→bad transitions (burst count) *)
}

(** [wrap ~engine ~config fabric] is a fabric with [fabric]'s name,
    node count and handler table, whose [send] injects faults. With
    [?links], per-(src,dst) override configs; with [?obs], the tally is
    exported as [fabric.faults.*] pull-probes (including Gilbert–Elliott
    state occupancy) and each injected fault emits a typed [Fault] trace
    event (attributed to the sending node). *)
val wrap :
  engine:Flipc_sim.Engine.t ->
  config:config ->
  ?links:links ->
  ?obs:Flipc_obs.Obs.t ->
  Fabric.t ->
  Fabric.t

(** [stats_of fabric] finds the fault tally of a wrapped fabric (matched
    through the shared stats record, so both the wrapper and the underlying
    fabric resolve), or [None] for an unwrapped fabric. Wrapping the same
    inner fabric more than once merges every layer's faults into a single
    tally, so the answer does not depend on wrap order. Per-link faults
    tally into the same record as fabric-wide ones. *)
val stats_of : Fabric.t -> stats option

(** Live entries in the internal fabric→tally registry. Dead fabrics are
    swept (the key is weak) and the table is hard-capped, so this stays
    bounded across arbitrarily many machine creations; exposed for the
    regression tests. *)
val registry_size : unit -> int
