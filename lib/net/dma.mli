(** Node-local DMA engine moving data between node memory and the network
    interface.

    The cost model charges [setup_ns] plus [ns_per_byte] of latency per
    transfer to the caller (the messaging engine). Cache coherence is
    maintained through {!Flipc_memsim.Bus.dma_access}: reads snoop Modified
    lines, writes invalidate cached copies. Writeback stalls are counted in
    the returned statistics but are {e not} added to latency — the modelled
    hardware streams write-backs concurrently with wire transmission, so
    they hide under the per-byte serialization already charged by the
    fabric. This overlap is what lets the reproduction hit the paper's
    6.25 ns/byte aggregate slope; see DESIGN.md. *)

type stats = {
  mutable transfers : int;
  mutable bytes : int;
  mutable hidden_stall_ns : int;  (** coherence stalls overlapped with wire *)
}

type t

val create :
  engine:Flipc_sim.Engine.t ->
  mem:Flipc_memsim.Shared_mem.t ->
  bus:Flipc_memsim.Bus.t ->
  setup_ns:int ->
  ns_per_byte:float ->
  t

val stats : t -> stats

(** [read t ~pos ~len] pulls [len] bytes out of node memory (timed).
    [~setup:false] skips the [setup_ns] channel-programming charge — for
    the second and later transfers of an engine-side batch, where the
    descriptor chain is already programmed ({!Flipc.Config.t}
    [engine_tx_batch]); per-byte serialization and coherence snooping are
    still charged in full. *)
val read : ?setup:bool -> t -> pos:int -> len:int -> Bytes.t

(** [write t ~pos data] deposits [data] into node memory (timed), e.g.
    directly into an application's posted receive buffer. [~setup:false]
    as for {!read}: followers of an engine-side deposit batch reuse the
    programmed descriptor chain. *)
val write : ?setup:bool -> t -> pos:int -> Bytes.t -> unit
