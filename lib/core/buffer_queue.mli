(** The wait-free endpoint buffer queue (Figure 3 of the paper).

    A circular array of buffer pointers with three cursors that chase each
    other in one direction:

    - [Release] (head): the application inserts buffers here — message
      buffers to transmit on a send endpoint, empty buffers to fill on a
      receive endpoint.
    - [Process] (middle): the messaging engine follows the head, sending
      from or receiving into each buffer it passes.
    - [Acquire] (tail): the application reclaims processed buffers here —
      transmitted buffers for reuse, or filled buffers to consume.

    Synchronization is wait-free with only atomic loads and stores:
    [Release], [Acquire] and the slot words are written exclusively by the
    application; [Process] exclusively by the engine. The queue is empty
    when all three cursors coincide; "nothing to process" when
    [Process = Release]; "nothing to acquire" when [Acquire = Process].
    One slot is kept empty to distinguish full from empty, so a queue of
    capacity [c] holds at most [c - 1] buffers.

    All operations are timed through the caller's {!Flipc_memsim.Mem_port}
    and must run inside a simulation process. *)

module Mem_port = Flipc_memsim.Mem_port

(** [init port layout ~ep] zeroes the three cursors (allocation time). *)
val init : Mem_port.t -> Layout.t -> ep:int -> unit

(** {1 Application side} *)

(** [app_release port layout ~ep ~buf_addr] inserts a buffer pointer at the
    head. [Error `Full] if the ring is full — the application has
    oversubscribed its own resources, a condition FLIPC reports rather
    than blocks on. *)
val app_release :
  Mem_port.t -> Layout.t -> ep:int -> buf_addr:int -> (unit, [ `Full ]) result

(** [app_acquire port layout ~ep] reclaims the oldest processed buffer, or
    [None] if none is ready. *)
val app_acquire : Mem_port.t -> Layout.t -> ep:int -> int option

(** [app_release_burst port layout ~ep ~buf_addrs ~count] inserts the
    first [count] addresses of [buf_addrs] at the head with one cursor
    round-trip: the remote ([Acquire]) and own ([Release]) cursors are
    loaded once, every slot is stored, and a single [Release] store
    publishes the whole run. Returns how many were inserted — less than
    [count] when the ring fills (the overflow is {e not} inserted; the
    caller still owns those buffers). *)
val app_release_burst :
  Mem_port.t -> Layout.t -> ep:int -> buf_addrs:int array -> count:int -> int

(** [app_acquire_burst port layout ~ep ~max ~out] reclaims up to [max]
    processed buffers (bounded by [Array.length out]) into [out] with one
    cursor round-trip, returning how many were filled. Oldest first, same
    order [app_acquire] would have produced. *)
val app_acquire_burst :
  Mem_port.t -> Layout.t -> ep:int -> max:int -> out:int array -> int

(** {1 Engine side} *)

(** [engine_peek port layout ~ep] is the next buffer to process, with the
    current process cursor, without advancing. *)
val engine_peek : Mem_port.t -> Layout.t -> ep:int -> (int * int) option

(** [engine_fetch_release port layout ~ep] reads the application's
    [Release] cursor once, for use with {!engine_peek_at}. A batching
    engine pays this coherence miss once per drain instead of once per
    message. *)
val engine_fetch_release : Mem_port.t -> Layout.t -> ep:int -> int

(** [engine_peek_at port layout ~ep ~release] is {!engine_peek} against a
    cached [Release] value. A stale [release] can only under-report (the
    cursor never retreats), so callers refresh with
    {!engine_fetch_release} on [None] before concluding the ring is
    empty. *)
val engine_peek_at :
  Mem_port.t -> Layout.t -> ep:int -> release:int -> (int * int) option

(** [engine_advance port layout ~ep ~cursor] moves the process cursor past
    the slot returned by [engine_peek]. *)
val engine_advance : Mem_port.t -> Layout.t -> ep:int -> cursor:int -> unit

(** {1 Untimed introspection (tests and assertions only)} *)

type snapshot = {
  release : int;
  process : int;
  acquire : int;
  capacity : int;
}

val snapshot : Mem_port.t -> Layout.t -> ep:int -> snapshot

(** Number of buffers awaiting engine processing. *)
val to_process : snapshot -> int

(** Number of processed buffers awaiting application acquire. *)
val to_acquire : snapshot -> int

(** Total buffers held in the ring. *)
val occupancy : snapshot -> int

(** Cursor sanity: all three in range and orderable on the ring. *)
val well_formed : snapshot -> bool
