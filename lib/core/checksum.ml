(* FNV-1a, 32-bit. One multiply and one xor per byte: cheap enough for a
   per-message software checksum on the library path, and any single-bit
   or short-burst damage changes the digest with overwhelming
   probability — which is all the corrupt-frame gate needs (it is not a
   cryptographic integrity check). *)

let fnv_offset = 0x811C9DC5
let fnv_prime = 0x0100_0193
let mask32 = 0xFFFF_FFFF
let byte h b = (h lxor b) * fnv_prime land mask32

(* The memory model constrains stored words to 30 non-negative bits
   (see {!Flipc_memsim.Shared_mem}), so the digest that goes in the
   frame trailer is the 32-bit hash with its top two bits xor-folded
   back in — every input bit still affects the result. *)
let fold30 h = (h lxor (h lsr 30)) land 0x3FFF_FFFF

let of_bytes ?(pos = 0) ?len bytes =
  let len = match len with Some l -> l | None -> Bytes.length bytes - pos in
  if pos < 0 || len < 0 || pos + len > Bytes.length bytes then
    invalid_arg "Checksum.of_bytes: range out of bounds";
  let h = ref fnv_offset in
  for i = pos to pos + len - 1 do
    h := byte !h (Char.code (Bytes.unsafe_get bytes i))
  done;
  !h

(* Word-at-a-time variant for the sender side, which reads the buffer
   through {!Flipc_memsim.Mem_port} as little-endian 32-bit words: folds
   each word's four bytes in LE order, so the digest equals
   [of_bytes] over the serialized image. *)
let of_words ~nwords word =
  let h = ref fnv_offset in
  for i = 0 to nwords - 1 do
    let w = word i in
    h := byte !h (w land 0xFF);
    h := byte !h ((w lsr 8) land 0xFF);
    h := byte !h ((w lsr 16) land 0xFF);
    h := byte !h ((w lsr 24) land 0xFF)
  done;
  !h
