(** Convenience channel layer: automatic buffer management over FLIPC.

    The paper's own verdict on the raw interface: "a FLIPC application can
    expect to employ about half of its calls to FLIPC to send or receive
    messages, and the other half for message buffer management. An
    improved buffer management design that frees the programmer from most
    of these details is clearly called for." This module is that design,
    implemented — per the paper's layering philosophy — entirely above the
    transport, in the library.

    A sender channel owns a pool of message buffers: [send] copies the
    payload in, queues it, and transparently reclaims transmitted buffers
    back into the pool. A receiver channel keeps its endpoint's queue
    topped up: [recv] copies the payload out and reposts the buffer
    immediately. Payloads are variable-length up to [capacity]: the first
    payload word carries the length (a 4-byte library header inside
    FLIPC's fixed-size message).

    The cost of the convenience is one payload copy per side — exactly the
    trade the paper declines to make in the transport itself but endorses
    above it. Latency-critical code keeps using {!Api} directly. *)

type tx
type rx

type error = [ Api.error | `No_buffer  (** pool exhausted and nothing reclaimable *) ]

val error_to_string : error -> string

(** {1 Sender} *)

(** [create_tx api ~dest ()] allocates a send endpoint connected to
    [dest] and a pool of [pool] buffers (default 4). [priority] and
    [burst] pass through to {!Api.allocate_endpoint}'s transport
    prioritization / capacity controls. *)
val create_tx :
  Api.t ->
  dest:Address.t ->
  ?pool:int ->
  ?priority:int ->
  ?burst:int ->
  unit ->
  (tx, error) result

(** [send t payload] copies [payload] into a pool buffer and queues it.
    Spins (bounded by queue drain) for a reclaimable buffer when the pool
    is momentarily empty. Raises [Invalid_argument] if the payload exceeds
    [capacity]. *)
val send : tx -> Bytes.t -> (unit, error) result

(** [try_send t payload] never spins: [`No_buffer] when the pool is empty
    and nothing has been transmitted yet, [`Full] when the endpoint queue
    is full. *)
val try_send : tx -> Bytes.t -> (unit, error) result

(** [send_deadline t ~deadline payload] is [send] with a bounded wait:
    when the pool is empty it polls for a reclaimable buffer until the
    virtual clock ({!Api.now}) reaches [deadline] (absolute, virtual ns)
    before returning [`Timeout] — the recourse when the engine may have
    stopped processing (the unbounded [send] would spin forever). *)
val send_deadline :
  tx -> deadline:int -> Bytes.t -> (unit, [ error | `Timeout ]) result

(** [send_timeout t payload] is the deprecated spin-count variant of
    {!send_deadline}: [max_spins] (default 100_000) legacy polls are
    converted to the equivalent virtual-time budget
    ([max_spins * 10 * instr_ns] from now), so the actual duration
    depends on the node's cost model. New code should state a deadline
    directly. *)
val send_timeout :
  tx -> ?max_spins:int -> Bytes.t -> (unit, [ error | `Timeout ]) result

(** Messages queued so far. *)
val sent : tx -> int

(** {1 Receiver} *)

(** [create_rx api ?depth ?semaphore ()] allocates a receive endpoint with
    [depth] (default 4) posted buffers. *)
val create_rx :
  Api.t ->
  ?depth:int ->
  ?semaphore:Flipc_rt.Rt_semaphore.t ->
  unit ->
  (rx, error) result

(** The endpoint address to hand to senders (or a name service). *)
val address : rx -> Address.t

(** [recv t] copies out the oldest delivered payload and reposts its
    buffer, or [None]. *)
val recv : rx -> Bytes.t option

(** [recv_wait t thr] blocks on the endpoint's semaphore. Requires the
    channel to have been created with one. *)
val recv_wait : rx -> Flipc_rt.Sched.thread -> Bytes.t

(** Messages consumed so far. *)
val received : rx -> int

(** Frames discarded because their length header was garbage (a peer not
    speaking the channel framing); the channel skips them rather than
    failing. *)
val corrupt_frames : rx -> int

(** Transport discards on this channel since the last call (wait-free
    read-and-reset). *)
val drops : rx -> int

(** {1 Both} *)

(** Largest payload a channel message can carry
    (= {!Api.payload_bytes} - 4 bytes of length header). *)
val capacity : Api.t -> int
