(** Cheap 32-bit frame checksum (FNV-1a).

    When {!Config.t.frame_checksum} is on, every message buffer carries
    this digest of the rest of its wire image in a 4-byte trailer (see
    {!Msg_buffer}): the sender stores it at send, the receiving engine
    recomputes it before demultiplexing and discards mismatching frames.
    FNV-1a is a hash, not a MAC — it guards against wire damage (bit
    flips), not adversaries. *)

(** [of_bytes ?pos ?len b] digests [len] bytes of [b] starting at [pos]
    (default: all of [b]). *)
val of_bytes : ?pos:int -> ?len:int -> Bytes.t -> int

(** [of_words ~nwords word] digests [nwords] little-endian 32-bit words,
    [word i] being the i-th; equal to {!of_bytes} over the serialized
    image. Lets the sender hash straight out of simulated memory without
    materializing the image. *)
val of_words : nwords:int -> (int -> int) -> int

(** [fold30 h] xor-folds the 32-bit digest down to the 30 non-negative
    bits a {!Flipc_memsim.Shared_mem} word can hold — the form actually
    stored in the frame trailer. *)
val fold30 : int -> int
