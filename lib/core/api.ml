module Mem_port = Flipc_memsim.Mem_port
module Sched = Flipc_rt.Sched
module Rt_semaphore = Flipc_rt.Rt_semaphore

type t = {
  comm : Comm_buffer.t;
  port : Mem_port.t;
  engines : Msg_engine.t array;  (* the node's engine shards, index = shard *)
  config : Config.t;
  layout : Layout.t;
  mutable last_mid : int;
  mutable last_recv_mid : int;
}

(* Causal message ids: one process-wide counter stamps every send (the
   stamp rides in the state-word store the send already performs, so the
   timed cost is zero). Process-global rather than per-attachment so an
   id names one message across every machine in the simulation. 28 bits,
   wrapping past 0 (0 = unstamped). Atomic because the wall-clock
   firehose mode runs independent machines on separate domains; the
   virtual-time path is unaffected (single domain, same sequence). *)
let mid_counter = Atomic.make 0

let fresh_mid () = (Atomic.fetch_and_add mid_counter 1 mod Msg_buffer.max_msg_id) + 1

let fresh_msg_id = fresh_mid

type endpoint = {
  index : int;
  ep_kind : Endpoint_kind.t;
  sem : Rt_semaphore.t option;
}

type buffer = int

type error = [ `No_resources | `Full | `Wrong_kind | `No_destination ]

let error_to_string = function
  | `No_resources -> "no resources"
  | `Full -> "endpoint queue full"
  | `Wrong_kind -> "wrong endpoint kind"
  | `No_destination -> "no destination connected"

let attach ~comm ~port ~engines =
  if Array.length engines = 0 then invalid_arg "Api.attach: no engines";
  {
    comm;
    port;
    engines;
    config = Comm_buffer.config comm;
    layout = Comm_buffer.layout comm;
    last_mid = 0;
    last_recv_mid = 0;
  }

let last_msg_id t = t.last_mid
let last_recv_msg_id t = t.last_recv_mid

let config t = t.config
let layout t = t.layout
let port t = t.port
let comm t = t.comm
let now t = Flipc_sim.Engine.now (Flipc_memsim.Mem_port.engine t.port)

let instr_ns t =
  (Flipc_memsim.Bus.cost_model (Flipc_memsim.Mem_port.bus t.port))
    .Flipc_memsim.Cost_model.instr_ns
let payload_bytes t = Config.payload_bytes t.config
let node t = Msg_engine.node t.engines.(0)
let obs t = Msg_engine.obs t.engines.(0)

(* The engine shard that owns local endpoint [ep] — the same map the
   machine's delivery router uses, so doorbell pokes always reach the
   engine that will drain the queue (no lost wakeups across shards). *)
let owner_engine t ~ep =
  let count = Array.length t.engines in
  if count = 1 then t.engines.(0)
  else
    t.engines.(Msg_engine.owner_shard ~count (Comm_buffer.ep_offset t.comm + ep))

let emit t ev =
  match obs t with
  | Some o when Flipc_obs.Obs.tracing o -> Flipc_obs.Obs.event o (ev ())
  | _ -> ()

let lat t f = match obs t with Some o -> f o (Flipc_obs.Obs.latency o) | None -> ()

(* Mutual exclusion among application threads per the configured interface
   variant. The lock word is a test-and-set spinlock with no cache
   residency; spinning backs off by a few instruction times so a simulated
   contender cannot livelock the clock. *)
let with_lock t ~ep f =
  match t.config.Config.lock_mode with
  | Config.Lock_free -> f ()
  | Config.Test_and_set ->
      let lock_addr = Layout.ep_field t.layout ~ep Layout.Lock in
      while not (Mem_port.test_and_set t.port lock_addr) do
        Mem_port.instr t.port 10
      done;
      Fun.protect ~finally:(fun () -> Mem_port.clear t.port lock_addr) f

let ep_field t ~ep field = Layout.ep_field t.layout ~ep field

(* Drop-counter idiom (single writer, load + store, no RMW): the
   application side owns this word, so the unsynchronized increment is
   safe, and only the store is a timed memory operation. *)
let bump_word t addr = Mem_port.store t.port addr ((Mem_port.peek t.port addr + 1) land 0x3FFFFFFF)

(* Send doorbell: rung after every release onto a send endpoint's queue
   (strictly after — the engine checks doorbells before parking, so
   release-then-ring is what makes wakeups lossless). The engine compares
   the word against its private shadow; any change means "look at this
   queue". *)
let ring_doorbell t ~ep =
  bump_word t (ep_field t ~ep Layout.Send_pending);
  (* Summary second: the engine captures the summary before scanning the
     per-endpoint words, so ring-then-summarize keeps wakeups lossless —
     an engine that saw the new summary scans after this point and finds
     the ring; one that missed it is forced to rescan by the changed
     summary on its next look. Unlike [Send_pending] (single writer: the
     endpoint's owner), the summary is shared by every application on the
     communication buffer, so the bump must be a locked increment — a
     plain load+store pair can lose an increment to a concurrent ringer,
     leaving the word equal to the engine's shadow and the doorbell
     unseen forever. *)
  ignore
    (Mem_port.fetch_add t.port
       (Layout.global_addr t.layout Layout.G_doorbell_seq)
       1
      : int)

(* Schedule-invalidation epoch: bumped after any endpoint-table change
   the engine's cached schedule depends on. Several attachments may share
   a buffer and coalesce increments (both read [n], both store [n+1]);
   that is harmless because each bump is ordered after its own table
   writes, so whichever value the engine observes, the rebuild's table
   scan sees all the coalesced changes. The poke makes the change take
   effect promptly when the engine is parked — without it the rebuild
   would be deferred to the next traffic-driven wakeup (still correct,
   since a send both rings its doorbell and pokes, but it would leave
   e.g. a priority change invisible for an unbounded idle stretch). *)
let bump_epoch t =
  (* Locked for the same reason as the doorbell summary: the epoch word
     is written by every application sharing the buffer, and a lost
     increment can leave the word equal to an engine's cached copy with
     a table change unseen. *)
  ignore
    (Mem_port.fetch_add t.port
       (Layout.global_addr t.layout Layout.G_schedule_epoch)
       1
      : int);
  (* Every shard caches its own slice of the schedule off the same epoch
     word, so a table change must wake them all. *)
  Array.iter Msg_engine.poke t.engines

let allocate_endpoint t ~kind ?semaphore ?(priority = 0) ?(burst = 0)
    ?allowed_node () =
  if priority < 0 then invalid_arg "Api.allocate_endpoint: negative priority";
  if burst < 0 then invalid_arg "Api.allocate_endpoint: negative burst";
  (match allowed_node with
  | Some n when n < 0 -> invalid_arg "Api.allocate_endpoint: bad allowed_node"
  | _ -> ());
  match Comm_buffer.alloc_endpoint t.comm with
  | None -> Error `No_resources
  | Some ep ->
      Mem_port.instr t.port 12;
      Buffer_queue.init t.port t.layout ~ep;
      Mem_port.store t.port (ep_field t ~ep Layout.Priority) priority;
      Mem_port.store t.port (ep_field t ~ep Layout.Burst) burst;
      Mem_port.store t.port
        (ep_field t ~ep Layout.Allowed_node)
        (match allowed_node with Some n -> n + 1 | None -> 0);
      Mem_port.store t.port
        (ep_field t ~ep Layout.Queue_base)
        (Layout.slot_addr t.layout ~ep ~slot:0);
      Mem_port.store t.port
        (ep_field t ~ep Layout.Queue_capacity)
        t.config.Config.queue_capacity;
      Mem_port.store t.port
        (ep_field t ~ep Layout.Sem_flag)
        (match semaphore with Some _ -> 1 | None -> 0);
      Mem_port.store t.port
        (ep_field t ~ep Layout.Dest_addr)
        (Address.to_word Address.null);
      Mem_port.store t.port (ep_field t ~ep Layout.Drop_read) 0;
      Mem_port.store t.port (ep_field t ~ep Layout.Drop_count) 0;
      Mem_port.store t.port (ep_field t ~ep Layout.Send_pending) 0;
      Mem_port.store t.port (ep_field t ~ep Layout.Lock) 0;
      (* The type word last: the engine ignores the endpoint until it is
         typed, so a partially initialized endpoint is never scanned.
         The epoch bump is ordered after the type word: when the engine
         sees the new epoch, the rebuild scan sees the whole endpoint. *)
      Mem_port.store t.port
        (ep_field t ~ep Layout.Ep_type)
        (Endpoint_kind.to_word kind);
      bump_epoch t;
      Comm_buffer.set_semaphore t.comm ~ep semaphore;
      Ok { index = ep; ep_kind = kind; sem = semaphore }

let free_endpoint t ep =
  Mem_port.store t.port
    (ep_field t ~ep:ep.index Layout.Ep_type)
    Endpoint_kind.free_word;
  bump_epoch t;
  Comm_buffer.set_semaphore t.comm ~ep:ep.index None;
  Comm_buffer.free_endpoint t.comm ep.index

let set_priority t ep priority =
  if priority < 0 then invalid_arg "Api.set_priority: negative priority";
  Mem_port.store t.port (ep_field t ~ep:ep.index Layout.Priority) priority;
  bump_epoch t

let set_burst t ep burst =
  if burst < 0 then invalid_arg "Api.set_burst: negative burst";
  Mem_port.store t.port (ep_field t ~ep:ep.index Layout.Burst) burst;
  bump_epoch t

let address t ep =
  (* Addresses carry node-global endpoint indices so the engine can
     demultiplex across multiple communication buffers. *)
  Address.make ~node:(node t)
    ~endpoint:(Comm_buffer.ep_offset t.comm + ep.index)
let endpoint_index ep = ep.index
let kind ep = ep.ep_kind
let semaphore ep = ep.sem

let connect t ep addr =
  Mem_port.store t.port
    (ep_field t ~ep:ep.index Layout.Dest_addr)
    (Address.to_word addr)

let allocate_buffer t =
  match Comm_buffer.alloc_buffer t.comm with
  | None -> Error `No_resources
  | Some buf ->
      Mem_port.instr t.port 6;
      Msg_buffer.set_state t.port t.layout ~buf Msg_buffer.Idle;
      Ok buf

let free_buffer t buf = Comm_buffer.free_buffer t.comm buf
let buffer_index buf = buf

let buffer_of_index t i =
  if i < 0 || i >= t.config.Config.total_buffers then
    invalid_arg "Api.buffer_of_index: out of range";
  i

let write_payload t buf ?at data =
  Msg_buffer.write_payload t.port t.layout ~buf ?at data

let read_payload t buf ?at len =
  Msg_buffer.read_payload t.port t.layout ~buf ?at len

let buffer_complete t buf =
  match Msg_buffer.state t.port t.layout ~buf with
  | Some Msg_buffer.Complete -> true
  | Some Msg_buffer.Idle | None -> false

let release_on ?(doorbell = false) t ~ep ~buf =
  let buf_addr = Layout.buffer_addr t.layout buf in
  match Buffer_queue.app_release t.port t.layout ~ep ~buf_addr with
  | Ok () ->
      (* Order matters: queue release, then doorbell, then poke. The
         engine re-checks doorbells before parking, so a ring that lands
         while it runs is never lost; the poke wakes it if parked. The
         poke goes to the shard that owns this endpoint. *)
      if doorbell then ring_doorbell t ~ep;
      Msg_engine.poke (owner_engine t ~ep);
      Ok ()
  | Error `Full -> Error `Full

let send_with_dest t ep buf dest =
  if ep.ep_kind <> Endpoint_kind.Send then Error `Wrong_kind
  else if Address.is_null dest then Error `No_destination
  else
    let mid = fresh_mid () in
    let r =
      with_lock t ~ep:ep.index (fun () ->
          Mem_port.instr t.port 6;
          Msg_buffer.set_dest t.port t.layout ~buf dest;
          Msg_buffer.set_state_and_id t.port t.layout ~buf ~mid Msg_buffer.Idle;
          (* Checksum last: it must cover the header words just written.
             The engine only reads the buffer after the release below, so
             the digest is what the wire will carry. *)
          if Msg_buffer.checksum_enabled t.layout then
            Msg_buffer.store_checksum t.port t.layout ~buf;
          release_on ~doorbell:true t ~ep:ep.index ~buf)
    in
    (match r with
    | Ok () ->
        t.last_mid <- mid;
        (* Send-enqueue stamp: start of the per-message latency pipeline. *)
        let dst_node = Address.node dest in
        let dst_ep = Address.endpoint dest in
        lat t (fun o l ->
            Flipc_obs.Latency.send_enqueued l ~now:(Flipc_obs.Obs.now o)
              ~dst_node ~dst_ep);
        emit t (fun () ->
            Flipc_obs.Event.Send_enqueued
              {
                node = node t;
                ep = Comm_buffer.ep_offset t.comm + ep.index;
                dst_node;
                dst_ep;
                mid;
              })
    | Error _ -> ());
    r

let send t ep buf =
  let dest =
    Address.of_word
      (Mem_port.load t.port (ep_field t ~ep:ep.index Layout.Dest_addr))
  in
  send_with_dest t ep buf dest

let send_to t ep buf dest = send_with_dest t ep buf dest

let post_receive t ep buf =
  if ep.ep_kind <> Endpoint_kind.Recv then Error `Wrong_kind
  else
    with_lock t ~ep:ep.index (fun () ->
        Mem_port.instr t.port 4;
        Msg_buffer.set_state t.port t.layout ~buf Msg_buffer.Idle;
        release_on t ~ep:ep.index ~buf)

let acquire_any t ep =
  with_lock t ~ep:ep.index (fun () ->
      match Buffer_queue.app_acquire t.port t.layout ~ep:ep.index with
      | None -> None
      | Some buf_addr -> (
          match Layout.buffer_of_addr t.layout buf_addr with
          | Some buf -> Some buf
          | None ->
              (* Only the application writes slots, so a bad pointer here is
                 its own corruption; surface it loudly. *)
              invalid_arg "Api: corrupt buffer pointer in own queue"))

let receive t ep =
  if ep.ep_kind <> Endpoint_kind.Recv then
    invalid_arg "Api.receive: not a receive endpoint"
  else
    match acquire_any t ep with
    | None -> None
    | Some buf as r ->
        t.last_recv_mid <- Msg_buffer.msg_id t.port t.layout ~buf;
        let node = node t in
        let global_ep = Comm_buffer.ep_offset t.comm + ep.index in
        lat t (fun o l ->
            Flipc_obs.Latency.recv_dequeued l ~now:(Flipc_obs.Obs.now o) ~node
              ~ep:global_ep);
        emit t (fun () ->
            Flipc_obs.Event.Recv_dequeued
              { node; ep = global_ep; mid = t.last_recv_mid });
        r

let reclaim t ep =
  if ep.ep_kind <> Endpoint_kind.Send then
    invalid_arg "Api.reclaim: not a send endpoint"
  else acquire_any t ep

(* {2 Burst operations}

   The batched hot path ({!Config.t.app_send_burst} / [app_recv_burst];
   DESIGN.md §16). Each burst pays one cursor round-trip on the
   underlying queue ({!Buffer_queue.app_release_burst} /
   [app_acquire_burst]) and — on the send side — rings the doorbell and
   pokes the owning engine shard exactly once, however many messages it
   carries. Wakeups stay lossless by the same argument as the singleton
   path: all queue stores precede the one ring, which precedes the one
   poke, and the engine re-checks doorbells before parking. *)

let send_burst t ep bufs =
  if ep.ep_kind <> Endpoint_kind.Send then Error `Wrong_kind
  else
    let dest =
      Address.of_word
        (Mem_port.load t.port (ep_field t ~ep:ep.index Layout.Dest_addr))
    in
    if Address.is_null dest then Error `No_destination
    else
      let count = Array.length bufs in
      if count = 0 then Ok 0
      else
        with_lock t ~ep:ep.index (fun () ->
            let mids = Array.make count 0 in
            let addrs = Array.make count 0 in
            for i = 0 to count - 1 do
              let buf = bufs.(i) in
              let mid = fresh_mid () in
              mids.(i) <- mid;
              addrs.(i) <- Layout.buffer_addr t.layout buf;
              Mem_port.instr t.port 6;
              Msg_buffer.set_dest t.port t.layout ~buf dest;
              Msg_buffer.set_state_and_id t.port t.layout ~buf ~mid
                Msg_buffer.Idle;
              (* Checksum last, as in the singleton send: it must cover
                 the header words just written. *)
              if Msg_buffer.checksum_enabled t.layout then
                Msg_buffer.store_checksum t.port t.layout ~buf
            done;
            let n =
              Buffer_queue.app_release_burst t.port t.layout ~ep:ep.index
                ~buf_addrs:addrs ~count
            in
            (* Overflowed buffers (i >= n) were never released: the caller
               still owns them and their header writes are inert. *)
            if n > 0 then begin
              ring_doorbell t ~ep:ep.index;
              Msg_engine.poke (owner_engine t ~ep:ep.index);
              t.last_mid <- mids.(n - 1);
              let dst_node = Address.node dest in
              let dst_ep = Address.endpoint dest in
              let src_node = node t in
              let src_ep = Comm_buffer.ep_offset t.comm + ep.index in
              for i = 0 to n - 1 do
                lat t (fun o l ->
                    Flipc_obs.Latency.send_enqueued l
                      ~now:(Flipc_obs.Obs.now o) ~dst_node ~dst_ep);
                emit t (fun () ->
                    Flipc_obs.Event.Send_enqueued
                      {
                        node = src_node;
                        ep = src_ep;
                        dst_node;
                        dst_ep;
                        mid = mids.(i);
                      })
              done
            end;
            Ok n)

let acquire_burst t ep ~out =
  let max = Array.length out in
  if max = 0 then 0
  else
    with_lock t ~ep:ep.index (fun () ->
        let addrs = Array.make max 0 in
        let n =
          Buffer_queue.app_acquire_burst t.port t.layout ~ep:ep.index ~max
            ~out:addrs
        in
        for i = 0 to n - 1 do
          match Layout.buffer_of_addr t.layout addrs.(i) with
          | Some buf -> out.(i) <- buf
          | None -> invalid_arg "Api: corrupt buffer pointer in own queue"
        done;
        n)

let receive_burst t ep ~out =
  if ep.ep_kind <> Endpoint_kind.Recv then
    invalid_arg "Api.receive_burst: not a receive endpoint"
  else
    let n = acquire_burst t ep ~out in
    if n > 0 then begin
      let node = node t in
      let global_ep = Comm_buffer.ep_offset t.comm + ep.index in
      for i = 0 to n - 1 do
        let mid = Msg_buffer.msg_id t.port t.layout ~buf:out.(i) in
        t.last_recv_mid <- mid;
        lat t (fun o l ->
            Flipc_obs.Latency.recv_dequeued l ~now:(Flipc_obs.Obs.now o) ~node
              ~ep:global_ep);
        emit t (fun () ->
            Flipc_obs.Event.Recv_dequeued { node; ep = global_ep; mid })
      done
    end;
    n

let post_receive_burst t ep bufs =
  if ep.ep_kind <> Endpoint_kind.Recv then Error `Wrong_kind
  else
    let count = Array.length bufs in
    if count = 0 then Ok 0
    else
      with_lock t ~ep:ep.index (fun () ->
          let addrs = Array.make count 0 in
          for i = 0 to count - 1 do
            Mem_port.instr t.port 4;
            Msg_buffer.set_state t.port t.layout ~buf:bufs.(i) Msg_buffer.Idle;
            addrs.(i) <- Layout.buffer_addr t.layout bufs.(i)
          done;
          let n =
            Buffer_queue.app_release_burst t.port t.layout ~ep:ep.index
              ~buf_addrs:addrs ~count
          in
          (* No doorbell: receive queues are drained on deposit, not on a
             Send_pending ring; the poke covers the parked-engine case. *)
          if n > 0 then Msg_engine.poke (owner_engine t ~ep:ep.index);
          Ok n)

let reclaim_burst t ep ~out =
  if ep.ep_kind <> Endpoint_kind.Send then
    invalid_arg "Api.reclaim_burst: not a send endpoint"
  else acquire_burst t ep ~out

let receive_wait t ep thr =
  match ep.sem with
  | None -> invalid_arg "Api.receive_wait: endpoint has no semaphore"
  | Some sem ->
      let rec loop () =
        match receive t ep with
        | Some buf -> buf
        | None ->
            Rt_semaphore.wait sem thr;
            loop ()
      in
      loop ()

let drops t ep = Drop_counter.read t.port t.layout ~ep:ep.index

let drops_read_and_reset t ep =
  let count = Drop_counter.read_and_reset t.port t.layout ~ep:ep.index in
  if count > 0 then
    emit t (fun () ->
        Flipc_obs.Event.Drops_read
          {
            node = node t;
            ep = Comm_buffer.ep_offset t.comm + ep.index;
            count;
          });
  count
