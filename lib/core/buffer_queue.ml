module Mem_port = Flipc_memsim.Mem_port

let init port layout ~ep =
  Mem_port.store port (Layout.ep_field layout ~ep Layout.Release) 0;
  Mem_port.store port (Layout.ep_field layout ~ep Layout.Acquire) 0;
  Mem_port.store port (Layout.ep_field layout ~ep Layout.Process) 0

let capacity layout = (Layout.config layout).Config.queue_capacity

let next layout cursor = (cursor + 1) mod capacity layout

(* The application reads [Process]/its own cursors, writes slots and its own
   cursors; it never writes [Process]. Symmetrically for the engine. Each
   operation reads the remote cursor once, giving the lock-free algorithm
   its single point of linearization per side. *)

let app_release port layout ~ep ~buf_addr =
  Mem_port.instr port 4;
  let release_addr = Layout.ep_field layout ~ep Layout.Release in
  let release = Mem_port.load port release_addr in
  let acquire =
    Mem_port.load port (Layout.ep_field layout ~ep Layout.Acquire)
  in
  let next_release = next layout release in
  if next_release = acquire then Error `Full
  else begin
    Mem_port.store port (Layout.slot_addr layout ~ep ~slot:release) buf_addr;
    (* The slot must be globally visible before the cursor moves; on the
       simulated in-order memory system program order suffices. *)
    Mem_port.store port release_addr next_release;
    Ok ()
  end

let app_acquire port layout ~ep =
  Mem_port.instr port 4;
  let acquire_addr = Layout.ep_field layout ~ep Layout.Acquire in
  let acquire = Mem_port.load port acquire_addr in
  let process = Mem_port.load port (Layout.ep_field layout ~ep Layout.Process) in
  if acquire = process then None
  else begin
    let buf_addr = Mem_port.load port (Layout.slot_addr layout ~ep ~slot:acquire) in
    Mem_port.store port acquire_addr (next layout acquire);
    Some buf_addr
  end

(* Burst variants: same single-writer protocol, one cursor round-trip for
   the whole run. [app_release_burst] loads [Release]+[Acquire] once,
   stores each slot, then publishes all of them with a single [Release]
   store (the slots must be globally visible before the cursor moves, as
   above); [app_acquire_burst] loads [Acquire]+[Process] once, reads up
   to [max] slots, and retires them with one [Acquire] store. Writer
   ownership is unchanged, so the wait-free argument carries over
   verbatim — batching only coalesces the cursor traffic. *)

let app_release_burst port layout ~ep ~buf_addrs ~count =
  Mem_port.instr port 4;
  let release_addr = Layout.ep_field layout ~ep Layout.Release in
  let release = Mem_port.load port release_addr in
  let acquire =
    Mem_port.load port (Layout.ep_field layout ~ep Layout.Acquire)
  in
  let cap = capacity layout in
  let space = (acquire - release - 1 + (2 * cap)) mod cap in
  let n = min count space in
  if n > 0 then begin
    let cursor = ref release in
    for i = 0 to n - 1 do
      Mem_port.instr port 1;
      Mem_port.store port
        (Layout.slot_addr layout ~ep ~slot:!cursor)
        buf_addrs.(i);
      cursor := next layout !cursor
    done;
    Mem_port.store port release_addr !cursor
  end;
  n

let app_acquire_burst port layout ~ep ~max ~out =
  Mem_port.instr port 4;
  let acquire_addr = Layout.ep_field layout ~ep Layout.Acquire in
  let acquire = Mem_port.load port acquire_addr in
  let process = Mem_port.load port (Layout.ep_field layout ~ep Layout.Process) in
  let cap = capacity layout in
  let ready = (process - acquire + cap) mod cap in
  let n = min max (min ready (Array.length out)) in
  if n > 0 then begin
    let cursor = ref acquire in
    for i = 0 to n - 1 do
      Mem_port.instr port 1;
      out.(i) <- Mem_port.load port (Layout.slot_addr layout ~ep ~slot:!cursor);
      cursor := next layout !cursor
    done;
    Mem_port.store port acquire_addr !cursor
  end;
  n

let engine_peek port layout ~ep =
  Mem_port.instr port 3;
  let process = Mem_port.load port (Layout.ep_field layout ~ep Layout.Process) in
  let release = Mem_port.load port (Layout.ep_field layout ~ep Layout.Release) in
  if process = release then None
  else
    let buf_addr =
      Mem_port.load port (Layout.slot_addr layout ~ep ~slot:process)
    in
    Some (buf_addr, process)

(* Engine-side burst cursor management. [Release] is written by the
   application, so every [engine_peek] load of it is a coherence miss on
   a contended ring; a batching engine fetches it once
   ([engine_fetch_release]) and peeks against the cached value
   ([engine_peek_at]). Safe under the single-writer discipline: [Release]
   only advances, so a stale value under-drains — it can never fabricate
   an unreleased slot — and the caller refreshes on apparent-empty, which
   makes the cached path observationally identical to [engine_peek]. *)
let engine_fetch_release port layout ~ep =
  Mem_port.instr port 1;
  Mem_port.load port (Layout.ep_field layout ~ep Layout.Release)

let engine_peek_at port layout ~ep ~release =
  Mem_port.instr port 2;
  let process = Mem_port.load port (Layout.ep_field layout ~ep Layout.Process) in
  if process = release then None
  else
    let buf_addr =
      Mem_port.load port (Layout.slot_addr layout ~ep ~slot:process)
    in
    Some (buf_addr, process)

let engine_advance port layout ~ep ~cursor =
  Mem_port.store port
    (Layout.ep_field layout ~ep Layout.Process)
    (next layout cursor)

type snapshot = {
  release : int;
  process : int;
  acquire : int;
  capacity : int;
}

let snapshot port layout ~ep =
  {
    release = Mem_port.peek port (Layout.ep_field layout ~ep Layout.Release);
    process = Mem_port.peek port (Layout.ep_field layout ~ep Layout.Process);
    acquire = Mem_port.peek port (Layout.ep_field layout ~ep Layout.Acquire);
    capacity = capacity layout;
  }

let ring_distance s a b = (b - a + s.capacity) mod s.capacity
let to_process s = ring_distance s s.process s.release
let to_acquire s = ring_distance s s.acquire s.process
let occupancy s = ring_distance s s.acquire s.release

let well_formed s =
  let in_range c = c >= 0 && c < s.capacity in
  in_range s.release && in_range s.process && in_range s.acquire
  && to_process s + to_acquire s = occupancy s
  && occupancy s < s.capacity
