module Mem_port = Flipc_memsim.Mem_port
module Rt_semaphore = Flipc_rt.Rt_semaphore

type error = [ Api.error | `No_buffer ]

let error_to_string = function
  | #Api.error as e -> Api.error_to_string e
  | `No_buffer -> "buffer pool exhausted"

let length_header = 4
let capacity api = Api.payload_bytes api - length_header

type tx = {
  t_api : Api.t;
  t_ep : Api.endpoint;
  pool : Api.buffer Queue.t;
  mutable t_sent : int;
}

type rx = {
  r_api : Api.t;
  r_ep : Api.endpoint;
  mutable r_received : int;
  mutable r_corrupt : int;
}

let create_tx api ~dest ?(pool = 4) ?priority ?burst () =
  if pool < 1 then invalid_arg "Channel.create_tx: pool < 1";
  match Api.allocate_endpoint api ~kind:Endpoint_kind.Send ?priority ?burst () with
  | Error e -> Error (e :> error)
  | Ok ep -> (
      Api.connect api ep dest;
      let q = Queue.create () in
      let rec fill n =
        if n = 0 then Ok ()
        else
          match Api.allocate_buffer api with
          | Ok buf ->
              Queue.push buf q;
              fill (n - 1)
          | Error e -> Error (e :> error)
      in
      match fill pool with
      | Error e -> Error e
      | Ok () -> Ok { t_api = api; t_ep = ep; pool = q; t_sent = 0 })

let reclaim_into_pool t =
  let rec loop () =
    match Api.reclaim t.t_api t.t_ep with
    | Some buf -> Queue.push buf t.pool; loop ()
    | None -> ()
  in
  loop ()

let write_framed api buf payload =
  let len = Bytes.length payload in
  if len > capacity api then
    invalid_arg "Channel.send: payload exceeds channel capacity";
  let framed = Bytes.create (length_header + len) in
  Bytes.set_int32_le framed 0 (Int32.of_int len);
  Bytes.blit payload 0 framed length_header len;
  Api.write_payload api buf framed

let queue_buf t buf payload =
  write_framed t.t_api buf payload;
  match Api.send t.t_api t.t_ep buf with
  | Ok () ->
      t.t_sent <- t.t_sent + 1;
      Ok ()
  | Error e ->
      (* The buffer was never queued: keep it in the pool. *)
      Queue.push buf t.pool;
      Error (e :> error)

let try_send t payload =
  reclaim_into_pool t;
  match Queue.take_opt t.pool with
  | Some buf -> queue_buf t buf payload
  | None -> Error `No_buffer

let send t payload =
  reclaim_into_pool t;
  match Queue.take_opt t.pool with
  | Some buf -> queue_buf t buf payload
  | None ->
      (* Everything is in flight: wait for the engine to transmit one.
         If nothing was ever sent, waiting cannot help. *)
      if t.t_sent = 0 then Error `No_buffer
      else begin
        let rec wait () =
          match Api.reclaim t.t_api t.t_ep with
          | Some buf -> buf
          | None ->
              Mem_port.instr (Api.port t.t_api) 10;
              wait ()
        in
        queue_buf t (wait ()) payload
      end

let send_deadline t ~deadline payload =
  reclaim_into_pool t;
  match Queue.take_opt t.pool with
  | Some buf -> (queue_buf t buf payload :> (unit, [ error | `Timeout ]) result)
  | None ->
      if t.t_sent = 0 then Error `No_buffer
      else begin
        (* Same wait as [send], but bounded by a virtual-clock deadline:
           if the engine never hands a transmitted buffer back (stopped
           engine, dead node), report [`Timeout] instead of spinning
           forever. *)
        let rec wait () =
          match Api.reclaim t.t_api t.t_ep with
          | Some buf -> Ok buf
          | None ->
              if Api.now t.t_api >= deadline then Error `Timeout
              else begin
                Mem_port.instr (Api.port t.t_api) 10;
                wait ()
              end
        in
        match wait () with
        | Error `Timeout -> Error `Timeout
        | Ok buf ->
            (queue_buf t buf payload :> (unit, [ error | `Timeout ]) result)
      end

(* Deprecated spin-count variant: each legacy spin polled once and burned
   10 instructions, so the equivalent time budget is
   [max_spins * 10 * instr_ns] from now. *)
let send_timeout t ?(max_spins = 100_000) payload =
  let deadline = Api.now t.t_api + (max_spins * 10 * Api.instr_ns t.t_api) in
  send_deadline t ~deadline payload

let sent t = t.t_sent

let create_rx api ?(depth = 4) ?semaphore () =
  if depth < 1 then invalid_arg "Channel.create_rx: depth < 1";
  match Api.allocate_endpoint api ~kind:Endpoint_kind.Recv ?semaphore () with
  | Error e -> Error (e :> error)
  | Ok ep -> (
      let rec post n =
        if n = 0 then Ok ()
        else
          match Api.allocate_buffer api with
          | Error e -> Error (e :> error)
          | Ok buf -> (
              match Api.post_receive api ep buf with
              | Ok () -> post (n - 1)
              | Error e -> Error (e :> error))
      in
      match post depth with
      | Error e -> Error e
      | Ok () -> Ok { r_api = api; r_ep = ep; r_received = 0; r_corrupt = 0 })

let address t = Api.address t.r_api t.r_ep

let repost t buf =
  match Api.post_receive t.r_api t.r_ep buf with
  | Ok () -> ()
  | Error _ ->
      (* Queue momentarily full (cannot happen: we just freed a slot), or
         the endpoint was freed under us; drop the buffer back to the
         pool rather than lose it. *)
      Api.free_buffer t.r_api buf

(* A peer that does not speak the channel framing can deliver a garbage
   length word; the receiver must shrug it off, not crash. *)
let consume t buf =
  let header = Api.read_payload t.r_api buf length_header in
  let len = Int32.to_int (Bytes.get_int32_le header 0) in
  if len < 0 || len > capacity t.r_api then begin
    t.r_corrupt <- t.r_corrupt + 1;
    repost t buf;
    None
  end
  else begin
    let payload = Api.read_payload t.r_api buf ~at:length_header len in
    repost t buf;
    t.r_received <- t.r_received + 1;
    Some payload
  end

let rec recv t =
  match Api.receive t.r_api t.r_ep with
  | None -> None
  | Some buf -> (
      match consume t buf with
      | Some payload -> Some payload
      | None -> recv t (* skip the corrupt frame *))

let rec recv_wait t thr =
  match consume t (Api.receive_wait t.r_api t.r_ep thr) with
  | Some payload -> payload
  | None -> recv_wait t thr

let corrupt_frames t = t.r_corrupt
let received t = t.r_received
let drops t = Api.drops_read_and_reset t.r_api t.r_ep
