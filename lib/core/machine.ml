module Sim = Flipc_sim.Engine
module Cost_model = Flipc_memsim.Cost_model
module Shared_mem = Flipc_memsim.Shared_mem
module Cache = Flipc_memsim.Cache
module Bus = Flipc_memsim.Bus
module Mem_port = Flipc_memsim.Mem_port
module Topology = Flipc_net.Topology
module Mesh = Flipc_net.Mesh
module Ethernet = Flipc_net.Ethernet
module Scsi_bus = Flipc_net.Scsi_bus
module Fabric = Flipc_net.Fabric
module Nic = Flipc_net.Nic
module Dma = Flipc_net.Dma
module Packet = Flipc_net.Packet
module Sched = Flipc_rt.Sched
module Rt_semaphore = Flipc_rt.Rt_semaphore

type fabric_kind =
  | Mesh of { cols : int; rows : int }
  | Ethernet of { nodes : int }
  | Scsi of { nodes : int }

type transport_maker =
  node:int ->
  nic:Nic.t ->
  node_count:int ->
  deliver:(Bytes.t -> unit) ->
  Msg_engine.transport

(* The native optimistic transport: transmit is a one-way packet send; the
   NIC's FLIPC-protocol callback hands arriving images straight to the
   engine (waking it if parked). *)
let native_transport ~node ~nic ~node_count ~deliver =
  Nic.set_callback nic Packet.Flipc (fun p -> deliver p.Packet.payload);
  {
    Msg_engine.tname = "native";
    transmit =
      (fun ~dst image ->
        if Address.is_null dst then Error `Bad_dest
        else
          let dnode = Address.node dst in
          if dnode < 0 || dnode >= node_count then Error `Bad_dest
          else begin
            Nic.send nic
              (Packet.make ~src:node ~dst:dnode ~protocol:Packet.Flipc
                 ~tag:(Address.endpoint dst) image);
            Ok ()
          end);
  }

type node = {
  id : int;
  mem : Shared_mem.t;
  bus : Bus.t;
  cpu_ports : Mem_port.t array;
  coproc_port : Mem_port.t;
  comms : Comm_buffer.t array;
  engines : Msg_engine.t array;  (* one per shard; index = shard id *)
  nic : Nic.t;
  dma : Dma.t;
  sched : Sched.t;
  apis : Api.t option array array;  (* indexed [comm].(cpu) *)
  heap_base : int;
  mutable heap_next : int;
  heap_end : int;
}

type t = {
  sim : Sim.t;
  fabric : Fabric.t;
  config : Config.t;
  nodes : node array;
  names : Nameservice.t;
  obs : Flipc_obs.Obs.t;
}

let round_up n m = (n + m - 1) / m * m

let make_node ~sim ~fabric ~config ~cost ~app_cpus ~transport_maker
    ~heap_bytes ~comm_buffers id =
  let layout = Layout.compute config in
  let region_stride = round_up (Layout.total_bytes layout) 4096 in
  let mem_bytes = max 4096 (comm_buffers * region_stride) + heap_bytes in
  let mem = Shared_mem.create ~size:mem_bytes in
  let bus = Bus.create ~cost () in
  let make_port name =
    let cache = Cache.create ~name () in
    Mem_port.create ~engine:sim ~mem ~bus ~cache ~name
  in
  let cpu_ports =
    Array.init app_cpus (fun cpu -> make_port (Printf.sprintf "n%d-cpu%d" id cpu))
  in
  let coproc_port = make_port (Printf.sprintf "n%d-coproc" id) in
  let comms =
    Array.init comm_buffers (fun k ->
        Comm_buffer.create ~base:(k * region_stride)
          ~ep_offset:(k * config.Config.endpoints)
          config mem)
  in
  let nic = Nic.create ~engine:sim ~fabric ~node:id in
  let dma =
    Dma.create ~engine:sim ~mem ~bus ~setup_ns:config.Config.dma_setup_ns
      ~ns_per_byte:config.Config.dma_ns_per_byte
  in
  let node_count = fabric.Fabric.node_count in
  let shards = config.Config.engine_shards in
  (* The transport maker needs a delivery path before the engines exist;
     break the cycle with a forward reference. Arrivals route to the
     shard owning the destination endpoint — the same [owner_shard] map
     the doorbell-poke path uses, so a shard only ever sees frames for
     endpoints it drains. Null or unresolvable destinations go to shard
     0, whose unroutable counter keeps the node-level accounting. *)
  let engines_ref = ref [||] in
  let deliver image =
    let engines = !engines_ref in
    if Array.length engines > 0 then
      let shard =
        if shards = 1 then 0
        else
          let dest = Msg_buffer.dest_of_image image in
          if Address.is_null dest then 0
          else Msg_engine.owner_shard ~count:shards (Address.endpoint dest)
      in
      Msg_engine.deliver engines.(shard) image
  in
  let transport = transport_maker ~node:id ~nic ~node_count ~deliver in
  let engines =
    Array.init shards (fun shard ->
        Msg_engine.create ~shard:(shard, shards) ~sim ~node:id
          ~comms:(Array.to_list comms) ~port:coproc_port ~dma ~transport ())
  in
  engines_ref := engines;
  Array.iter
    (fun engine ->
      Msg_engine.set_wakeup_hook engine (fun ~ep ->
          (* The hook receives a node-global endpoint index. *)
          let eps = config.Config.endpoints in
          let comm = comms.(ep / eps) in
          match Comm_buffer.semaphore comm ~ep:(ep mod eps) with
          | Some sem -> Rt_semaphore.post sem
          | None -> ()))
    engines;
  let sched = Sched.create ~engine:sim ~cpus:app_cpus in
  {
    id;
    mem;
    bus;
    cpu_ports;
    coproc_port;
    comms;
    engines;
    nic;
    dma;
    sched;
    apis = Array.init comm_buffers (fun _ -> Array.make app_cpus None);
    heap_base = mem_bytes - heap_bytes;
    heap_next = mem_bytes - heap_bytes;
    heap_end = mem_bytes;
  }

(* Untimed scan of a node's allocated endpoints: [(global, layout, local)]
   for every endpoint whose [Ep_type] word is not the free marker. Peeks
   only, so it is safe outside simulation processes (flight-recorder dumps
   run from plain host code). *)
let allocated_endpoints n =
  Array.to_list n.comms
  |> List.concat_map (fun c ->
         let layout = Comm_buffer.layout c in
         let eps = (Comm_buffer.config c).Config.endpoints in
         let off = Comm_buffer.ep_offset c in
         List.filter_map
           (fun ep ->
             let w =
               Mem_port.peek n.coproc_port
                 (Layout.ep_field layout ~ep Layout.Ep_type)
             in
             if w = Endpoint_kind.free_word then None
             else Some (off + ep, layout, ep))
           (List.init eps Fun.id))

(* Flight-recorder contribution ({!Flipc_obs.Obs.add_reporter}): engine
   counters and the cursor state of every allocated endpoint queue. *)
let flight_report t fmt =
  Array.iter
    (fun n ->
      Array.iter
        (fun engine ->
          let s = Msg_engine.stats engine in
          let shard_tag =
            if Msg_engine.shard_count engine = 1 then ""
            else Printf.sprintf " s%d" (Msg_engine.shard engine)
          in
          Format.fprintf fmt
            "node %d:%s engine iters=%d sends=%d recvs=%d drops=%d parks=%d@,"
            n.id shard_tag s.Msg_engine.iterations s.Msg_engine.sends
            s.Msg_engine.recvs s.Msg_engine.drops s.Msg_engine.parks)
        n.engines;
      List.iter
        (fun (gep, layout, ep) ->
          let q = Buffer_queue.snapshot n.coproc_port layout ~ep in
          Format.fprintf fmt
            "  ep %d: rel=%d proc=%d acq=%d (to_process=%d to_acquire=%d)%s@,"
            gep q.Buffer_queue.release q.Buffer_queue.process
            q.Buffer_queue.acquire
            (Buffer_queue.to_process q)
            (Buffer_queue.to_acquire q)
            (if Buffer_queue.well_formed q then "" else "  ** MALFORMED **"))
        (allocated_endpoints n))
    t.nodes

let create ?(config = Config.default) ?(cost = Cost_model.paragon)
    ?(mesh_config = Mesh.paragon_config) ?(app_cpus = 2)
    ?(transport = native_transport) ?(heap_bytes = 256 * 1024)
    ?(comm_buffers = 1) ?fault ?fault_links kind () =
  if comm_buffers < 1 then invalid_arg "Machine.create: comm_buffers < 1";
  let config = Config.validate_exn config in
  let sim = Sim.create () in
  let obs = Flipc_obs.Obs.create ~sim () in
  let fabric =
    match kind with
    | Mesh { cols; rows } ->
        Mesh.create ~engine:sim ~topology:(Topology.create ~cols ~rows)
          ~config:mesh_config
    | Ethernet { nodes } ->
        Ethernet.create ~engine:sim ~node_count:nodes
          ~config:Ethernet.default_config
    | Scsi { nodes } ->
        Scsi_bus.create ~engine:sim ~node_count:nodes
          ~config:Scsi_bus.default_config
  in
  let fabric =
    match (fault, fault_links) with
    | None, None -> fabric
    | fc, links ->
        (* Per-link overrides alone still need a wrapper; the fabric-wide
           config defaults to clean so only the named links fault. *)
        let fc = Option.value fc ~default:Flipc_net.Faulty.none in
        Flipc_net.Faulty.wrap ~engine:sim ~config:fc ?links ~obs fabric
  in
  let nodes =
    Array.init fabric.Fabric.node_count
      (make_node ~sim ~fabric ~config ~cost ~app_cpus
         ~transport_maker:transport ~heap_bytes ~comm_buffers)
  in
  Array.iter
    (fun n ->
      Array.iter
        (fun engine ->
          Msg_engine.set_obs engine obs;
          Msg_engine.start engine)
        n.engines)
    nodes;
  Flipc_obs.Obs.set_label obs
    (Printf.sprintf "flipc %s (%d nodes)" fabric.Fabric.name
       fabric.Fabric.node_count);
  let t = { sim; fabric; config; nodes; names = Nameservice.create (); obs } in
  Flipc_obs.Obs.add_reporter obs (fun fmt -> flight_report t fmt);
  t

let sim t = t.sim
let obs t = t.obs
let names t = t.names
let fabric t = t.fabric
let fault_stats t = Flipc_net.Faulty.stats_of t.fabric
let config t = t.config
let node_count t = Array.length t.nodes

let node t i =
  if i < 0 || i >= Array.length t.nodes then invalid_arg "Machine.node: bad id";
  t.nodes.(i)

let node_id n = n.id
let mem n = n.mem
let dma n = n.dma
let comm n = n.comms.(0)
let comm_buffers n = Array.length n.comms

let comm_at n k =
  if k < 0 || k >= Array.length n.comms then
    invalid_arg "Machine.comm_at: bad communication buffer index";
  n.comms.(k)

(* Bump allocation from the node's application heap (the memory above the
   communication buffer), 32-byte aligned for DMA friendliness. *)
let alloc_heap n bytes =
  if bytes <= 0 then invalid_arg "Machine.alloc_heap: bytes <= 0";
  let base = round_up n.heap_next 32 in
  if base + bytes > n.heap_end then failwith "Machine.alloc_heap: heap exhausted";
  n.heap_next <- base + bytes;
  base

let heap_remaining n = n.heap_end - round_up n.heap_next 32
let msg_engine n = n.engines.(0)
let msg_engines n = Array.to_list n.engines
let nic n = n.nic
let bus n = n.bus
let sched n = n.sched
let app_cpus n = Array.length n.cpu_ports

let app_port n ~cpu =
  if cpu < 0 || cpu >= Array.length n.cpu_ports then
    invalid_arg "Machine.app_port: bad cpu";
  n.cpu_ports.(cpu)

let coproc_port n = n.coproc_port

let api t ~node:i ?(cpu = 0) ?(comm = 0) () =
  let n = node t i in
  let c = comm_at n comm in
  match n.apis.(comm).(cpu) with
  | Some api -> api
  | None ->
      let api =
        Api.attach ~comm:c ~port:(app_port n ~cpu) ~engines:n.engines
      in
      n.apis.(comm).(cpu) <- Some api;
      api

let spawn_app ?name ?(cpu = 0) ?(comm = 0) t ~node:i f =
  let a = api t ~node:i ~cpu ~comm () in
  Sim.spawn ?name t.sim (fun () -> f a)

let spawn_thread ?name ?(comm = 0) t ~node:i ~priority f =
  let n = node t i in
  let a = api t ~node:i ~cpu:0 ~comm () in
  Sched.spawn ?name n.sched ~priority (fun thr -> f thr a)

let attach_monitor t =
  let m = Flipc_obs.Monitor.attach t.obs in
  Array.iter
    (fun n ->
      Flipc_obs.Monitor.add_check m ~rule:"queue.pointer_order" ~node:n.id
        (fun () ->
          List.fold_left
            (fun acc (gep, layout, ep) ->
              match acc with
              | Some _ -> acc
              | None ->
                  let q = Buffer_queue.snapshot n.coproc_port layout ~ep in
                  if Buffer_queue.well_formed q then None
                  else
                    Some
                      (Printf.sprintf
                         "endpoint %d queue cursors out of order: release=%d \
                          process=%d acquire=%d (capacity %d)"
                         gep q.Buffer_queue.release q.Buffer_queue.process
                         q.Buffer_queue.acquire q.Buffer_queue.capacity))
            None (allocated_endpoints n)))
    t.nodes;
  m

let run ?until t = Sim.run ?until t.sim

let stop_engines t =
  Array.iter (fun n -> Array.iter Msg_engine.stop n.engines) t.nodes
