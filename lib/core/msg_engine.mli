(** The FLIPC messaging engine.

    An independently executing component that moves messages between the
    communication buffer and the interconnect. On the modelled Paragon it
    runs on the dedicated message coprocessor: it shares the node's
    memory-coherence domain with the application CPUs (its [port]), and is
    structured as a non-preemptible event loop. Per the paper's protection
    argument, nothing the application does can block it: all shared-state
    interaction is through the wait-free queue and counter structures.

    Each loop iteration costs {!Config.engine_poll_ns} plus the memory
    traffic of discovering work; this polling cost is a real part of
    message latency and is visible in the FIG4 reproduction.

    {b Scheduling.} With {!Config.sched_mode} = [Doorbell] (the default)
    the iteration is work-proportional: the engine consults one schedule
    epoch word per communication buffer and one [Send_pending] doorbell
    word per {e allocated} send endpoint, visits only endpoints whose
    doorbell is raised, and rebuilds its cached priority schedule only
    when the epoch changed — no allocation, no sort, and no contact with
    the endpoint table on an idle poll. [Full_scan] keeps the original
    scan of every configured endpoint as an ablation. Both respect
    per-endpoint bursts and {!Config.engine_rx_burst}. See DESIGN.md §11.

    {b Parking.} A real engine spins forever. So that simulations
    terminate, an engine with no work for [engine_park_after] consecutive
    iterations suspends until {!poke}d (by the NIC on packet arrival or by
    the application library after queueing work). Parking only ever skips
    time in which nothing could happen; the one distortion is that the
    first message after an idle period sees no polling-discovery delay —
    a cold-start effect the TRANSIENT experiment documents. *)

type transport = {
  tname : string;
  transmit : dst:Address.t -> Bytes.t -> (unit, [ `Bad_dest ]) result;
      (** Called in engine-process context with the full wire image. The
          native mesh transport is asynchronous; the KKT transport blocks
          for an RPC round trip (the mismatch the paper calls out). *)
}

type stats = {
  mutable iterations : int;
  mutable sends : int;
  mutable recvs : int;
  mutable drops : int;  (** messages discarded: no posted receive buffer *)
  mutable rejects : int;  (** messages rejected by validity checks *)
  mutable unroutable : int;
      (** arrivals with a null or unresolvable destination — they belong
          to no communication buffer, so they are counted here at node
          level instead of being charged to some buffer's globals *)
  mutable bad_dest : int;  (** sends with an undeliverable destination *)
  mutable forbidden : int;
      (** sends refused by the endpoint's destination restriction *)
  mutable parks : int;
  mutable doorbell_hits : int;  (** doorbell observations that raised work *)
  mutable sched_rebuilds : int;
      (** cached-schedule rebuilds (epoch changes); constant under
          steady-state traffic *)
  mutable rx_truncations : int;
      (** iterations whose incoming drain hit {!Config.engine_rx_burst} *)
  mutable idle_scans_avoided : int;
      (** doorbell-mode iterations that visited no endpoint — each one a
          full table scan the [Full_scan] engine would have done *)
  mutable corrupt_frames : int;
      (** arrivals discarded by the frame-checksum check
          ({!Config.t.frame_checksum}); nothing in a damaged frame — the
          destination word included — can be trusted, so they are counted
          at node level and never demultiplexed *)
}

type t

(** [create ~comms ...] builds an engine serving one or more communication
    buffers (all sharing one {!Config.t}); several buffers support multiple
    mutually untrusting applications per node. Addresses carry node-global
    endpoint indices ([buffer_index * Config.endpoints + local]).

    [?shard] is [(index, count)]: this engine is shard [index] of a
    [count]-way partition of the node's endpoints and owns exactly the
    node-global endpoints [g] with [g mod count = index] (see
    {!owner_shard}). It schedules, stamps and drains only those, so every
    engine-written endpoint word keeps a single writer and the wait-free
    structures need no new synchronization. Default [(0, 1)]: the whole
    node, bit-identical to the pre-sharding engine. See DESIGN.md §16. *)
val create :
  ?shard:int * int ->
  sim:Flipc_sim.Engine.t ->
  node:int ->
  comms:Comm_buffer.t list ->
  port:Flipc_memsim.Mem_port.t ->
  dma:Flipc_net.Dma.t ->
  transport:transport ->
  unit ->
  t

val node : t -> int

(** This engine's shard index, and the node's shard count. *)
val shard : t -> int

val shard_count : t -> int

(** [owner_shard ~count g] is the shard owning node-global endpoint [g]
    under a [count]-way partition. The machine's delivery router and the
    application library's doorbell-poke target both use this exact
    function — the single source of endpoint-to-engine mapping. *)
val owner_shard : count:int -> int -> int

val stats : t -> stats

(** [deliver t image] hands an arriving wire image to the engine (called by
    transport receive paths) and pokes it. *)
val deliver : t -> Bytes.t -> unit

(** [poke t] wakes a parked engine; idempotent. *)
val poke : t -> unit

(** [start t] spawns the engine loop as a simulation process. *)
val start : t -> unit

(** [stop t] makes the loop exit at its next iteration. *)
val stop : t -> unit

val running : t -> bool

(** [set_wakeup_hook t f] installs the message-arrival notification used
    for the real-time semaphore option: [f ~ep] (node-global index) runs
    (in engine context) after a message is deposited on an endpoint whose
    [Sem_flag] is set. *)
val set_wakeup_hook : t -> (ep:int -> unit) -> unit

(** [set_trace t trace] attaches an event trace: the engine records sends,
    deposits, discards, rejects, parks and wakes with virtual timestamps.
    Tracing is off (and free) by default. *)
val set_trace : t -> Flipc_sim.Trace.t -> unit

(** [set_obs t obs] attaches an observability bundle: the engine stamps
    per-message latency stages, emits typed trace events (when the
    bundle's tracer is enabled) and exports its {!stats} fields as
    pull-probes on the bundle's registry — [node<i>.engine.*] for a
    single-shard engine (the historical names), [node<i>.engine.s<kk>.*]
    (zero-padded shard id) when sharded, so name-sorted metric snapshots
    enumerate shards deterministically in index order. *)
val set_obs : t -> Flipc_obs.Obs.t -> unit

val obs : t -> Flipc_obs.Obs.t option
