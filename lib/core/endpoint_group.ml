module Rt_semaphore = Flipc_rt.Rt_semaphore

type t = {
  api : Api.t;
  sem : Rt_semaphore.t option;
  mutable members : Api.endpoint array;
  mutable next : int;
}

let create ?semaphore api = { api; sem = semaphore; members = [||]; next = 0 }
let semaphore t = t.sem

let add t ep =
  if Api.kind ep <> Endpoint_kind.Recv then
    invalid_arg "Endpoint_group.add: not a receive endpoint";
  if
    Array.exists
      (fun e -> Api.endpoint_index e = Api.endpoint_index ep)
      t.members
  then invalid_arg "Endpoint_group.add: duplicate member";
  (* Physical equality is deliberate: the engine must post exactly the
     group's semaphore for blocking receives to be woken. *)
  (match t.sem with
  | Some sem -> (
      match Api.semaphore ep with
      | Some s when s == sem -> ()
      | Some _ | None ->
          invalid_arg
            "Endpoint_group.add: member must share the group's semaphore")
  | None -> ());
  t.members <- Array.append t.members [| ep |];
  (* Close the lost-wakeup window: a message deposited on [ep] before it
     joined the group already posted (and had consumed) the shared
     semaphore while no member could surface it, so threads blocked in
     [receive_any_wait] would sleep forever on traffic that is already
     here. One spurious post makes every waiter rescan; the Mesa-style
     wait loop absorbs it harmlessly when the queue is empty. *)
  match t.sem with Some sem -> Rt_semaphore.post sem | None -> ()

let remove t ep =
  let removed = ref (-1) in
  Array.iteri
    (fun i e ->
      if Api.endpoint_index e = Api.endpoint_index ep then removed := i)
    t.members;
  match !removed with
  | -1 -> ()
  | i ->
      let n = Array.length t.members in
      t.members <-
        Array.init (n - 1) (fun j ->
            if j < i then t.members.(j) else t.members.(j + 1));
      (* Members above the removed slot shift down one; a cursor that
         pointed into that region must shift with them or the scan
         starts one member late, permanently skipping its fair turn. *)
      if t.next > i then t.next <- t.next - 1;
      if t.next >= Array.length t.members then t.next <- 0

let members t = Array.to_list t.members
let size t = Array.length t.members

let receive_any t =
  let n = Array.length t.members in
  let rec scan i =
    if i >= n then None
    else
      let idx = (t.next + i) mod n in
      let ep = t.members.(idx) in
      match Api.receive t.api ep with
      | Some buf ->
          t.next <- (idx + 1) mod n;
          Some (ep, buf)
      | None -> scan (i + 1)
  in
  scan 0

let receive_any_wait t thr =
  match t.sem with
  | None -> invalid_arg "Endpoint_group.receive_any_wait: no group semaphore"
  | Some sem ->
      let rec loop () =
        match receive_any t with
        | Some r -> r
        | None ->
            Rt_semaphore.wait sem thr;
            loop ()
      in
      loop ()

let drops t =
  Array.fold_left (fun acc ep -> acc + Api.drops t.api ep) 0 t.members
