(** Whole-machine assembly: nodes (memory, caches, CPUs, message
    coprocessor, NIC, DMA), an interconnect fabric, one messaging engine
    per node, and per-node real-time schedulers.

    Modelled after a Paragon of MP3 nodes: each node has [app_cpus]
    application processors plus a dedicated message coprocessor, all in
    one cache-coherence domain. The Ethernet and SCSI variants rebuild the
    same structure over the development-cluster fabrics, which is how the
    paper validated FLIPC's portability. *)

type fabric_kind =
  | Mesh of { cols : int; rows : int }
  | Ethernet of { nodes : int }
  | Scsi of { nodes : int }

type node

type t

(** How each node's messaging engine reaches the wire. The maker is called
    once per node during boot; it returns the engine's transmit transport
    and is responsible for arranging inbound delivery by calling [deliver]
    (which hands a wire image to that node's engine) from whatever NIC
    callback or protocol machinery it sets up. The default is the native
    one-way optimistic transport; {!Flipc_kkt} provides an RPC-based
    alternative reproducing the paper's portable development path. *)
type transport_maker =
  node:int ->
  nic:Flipc_net.Nic.t ->
  node_count:int ->
  deliver:(Bytes.t -> unit) ->
  Msg_engine.transport

val native_transport : transport_maker

(** [create kind ()] builds and boots the machine: memories and
    communication buffers initialized, NIC callbacks wired, messaging
    engines started, wakeup hooks installed.

    @param config FLIPC configuration (default {!Config.default})
    @param cost memory-system cost model (default
      {!Flipc_memsim.Cost_model.paragon})
    @param mesh_config mesh timing (default {!Flipc_net.Mesh.paragon_config})
    @param app_cpus application CPUs per node (default 2, as on MP3 nodes)
    @param transport engine transport wiring (default {!native_transport})
    @param fault wrap the fabric in {!Flipc_net.Faulty} fault injection
      (drop / burst loss / duplicate / reorder / jitter / corrupt);
      default none
    @param fault_links per-(src,dst)-link fault overrides
      ({!Flipc_net.Faulty.links}); giving only [?fault_links] wraps the
      fabric with a clean fabric-wide config so just the named links
      fault *)
val create :
  ?config:Config.t ->
  ?cost:Flipc_memsim.Cost_model.t ->
  ?mesh_config:Flipc_net.Mesh.config ->
  ?app_cpus:int ->
  ?transport:transport_maker ->
  ?heap_bytes:int ->
  ?comm_buffers:int ->
  ?fault:Flipc_net.Faulty.config ->
  ?fault_links:Flipc_net.Faulty.links ->
  fabric_kind ->
  unit ->
  t

val sim : t -> Flipc_sim.Engine.t

(** The machine's observability bundle: every engine stamps per-message
    latency stages on it, its registry carries the [node<i>.engine.*]
    (and, with [?fault], [fabric.faults.*]) probes, and enabling its
    tracer turns on typed event tracing machine-wide. *)
val obs : t -> Flipc_obs.Obs.t

(** The machine-wide endpoint name service (the external service FLIPC
    assumes; see {!Nameservice}). *)
val names : t -> Nameservice.t

val fabric : t -> Flipc_net.Fabric.t

(** [attach_monitor t] attaches an online invariant monitor
    ({!Flipc_obs.Monitor.attach}) to the machine's bundle and registers
    per-node [queue.pointer_order] state checks over every allocated
    endpoint queue (untimed cursor peeks against
    {!Buffer_queue.well_formed}). Enables event tracing machine-wide. *)
val attach_monitor : t -> Flipc_obs.Monitor.t

(** Injected-fault tally when the machine was created with [?fault]. *)
val fault_stats : t -> Flipc_net.Faulty.stats option

val config : t -> Config.t
val node_count : t -> int
val node : t -> int -> node

(** {1 Per-node access} *)

val node_id : node -> int

(** The node's physical memory (communication buffer + application heap). *)
val mem : node -> Flipc_memsim.Shared_mem.t

(** The node's DMA engine (shared with the messaging engine). *)
val dma : node -> Flipc_net.Dma.t

(** [alloc_heap n bytes] bump-allocates a 32-byte-aligned block from the
    node's application heap (above the communication buffer); used for
    bulk-transfer regions. Fails when the heap is exhausted. *)
val alloc_heap : node -> int -> int

val heap_remaining : node -> int

(** The node's first communication buffer (most machines have just one). *)
val comm : node -> Comm_buffer.t

(** Communication buffers on this node (the multi-application extension:
    mutually untrusting applications each get their own region, endpoints
    and message-buffer pool, all served by the one engine). *)
val comm_buffers : node -> int

val comm_at : node -> int -> Comm_buffer.t

(** The node's first (shard-0) messaging engine — the only one when
    {!Config.t.engine_shards} is 1. *)
val msg_engine : node -> Msg_engine.t

(** All of the node's engine shards, in shard-index order. Shard [k] owns
    exactly the node-global endpoints [g] with
    [Msg_engine.owner_shard ~count g = k]; the machine routes arrivals
    and doorbell pokes with that same map. *)
val msg_engines : node -> Msg_engine.t list

val nic : node -> Flipc_net.Nic.t
val bus : node -> Flipc_memsim.Bus.t
val sched : node -> Flipc_rt.Sched.t
val app_cpus : node -> int

(** [app_port n ~cpu] is application CPU [cpu]'s memory port. *)
val app_port : node -> cpu:int -> Flipc_memsim.Mem_port.t

(** [coproc_port n] is the message coprocessor's (engine's) memory port;
    its {!Flipc_memsim.Mem_port} operation counters let benches measure
    the engine's per-iteration memory traffic. *)
val coproc_port : node -> Flipc_memsim.Mem_port.t

(** [api t ~node ?cpu ?comm ()] is the FLIPC attachment for that CPU and
    communication buffer (cached). *)
val api : t -> node:int -> ?cpu:int -> ?comm:int -> unit -> Api.t

(** {1 Running applications} *)

(** [spawn_app t ~node f] runs [f] as a plain simulation process with that
    node's CPU-0 attachment (no CPU contention modelled). [comm] selects
    the communication buffer (application trust domain). *)
val spawn_app :
  ?name:string -> ?cpu:int -> ?comm:int -> t -> node:int -> (Api.t -> unit) -> unit

(** [spawn_thread t ~node ~priority f] runs [f] as a real-time thread under
    the node's priority scheduler. The thread uses CPU 0's memory port. *)
val spawn_thread :
  ?name:string ->
  ?comm:int ->
  t ->
  node:int ->
  priority:int ->
  (Flipc_rt.Sched.thread -> Api.t -> unit) ->
  Flipc_rt.Sched.thread

(** {1 Control} *)

(** [run t] advances the simulation until the event queue drains (engines
    park when idle, so this terminates once applications finish). *)
val run : ?until:Flipc_sim.Vtime.t -> t -> unit

(** Stop every node's messaging engine. *)
val stop_engines : t -> unit
