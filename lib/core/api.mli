(** The FLIPC application interface layer.

    This is the library applications link against: it hides the
    communication-buffer data structures behind endpoint and buffer
    handles, and is the only component that manipulates the wait-free
    structures from the application side. One [Api.t] represents an
    attachment of application code running on one CPU of one node; several
    attachments may share a node's communication buffer (cooperating
    applications divide its endpoints).

    {b Threading.} The operations here are the paper's optimized
    lock-free interface when the configuration says [Lock_free]: at most
    one thread may use a given endpoint at a time (or the application
    provides its own mutual exclusion). With [Test_and_set] every endpoint
    operation takes the endpoint's multiprocessor lock — the original,
    slow interface kept for the cache ablation.

    All operations are asynchronous with respect to the messaging engine
    and never block, except [receive_wait], which blocks the calling
    real-time thread on the endpoint's semaphore. *)

type t
type endpoint
type buffer

type error =
  [ `No_resources  (** endpoint table or buffer pool exhausted *)
  | `Full  (** the endpoint's buffer queue is full *)
  | `Wrong_kind  (** send on a receive endpoint or vice versa *)
  | `No_destination  (** send with no connected destination *) ]

val error_to_string : error -> string

(** [attach ~comm ~port ~engines] creates an attachment. [engines] is the
    node's engine shard array in shard-index order (a single engine on an
    unsharded node); every doorbell poke this attachment performs goes to
    the shard that {!Msg_engine.owner_shard} assigns the endpoint. *)
val attach :
  comm:Comm_buffer.t ->
  port:Flipc_memsim.Mem_port.t ->
  engines:Msg_engine.t array ->
  t

val config : t -> Config.t
val layout : t -> Layout.t
val port : t -> Flipc_memsim.Mem_port.t
val comm : t -> Comm_buffer.t

(** Current virtual time on this attachment's clock (the simulation
    engine behind its memory port). Blocking library layers use it for
    deadline-based timeouts, so every layer's timeout is expressed in
    the same unit — virtual nanoseconds — regardless of fabric. *)
val now : t -> Flipc_sim.Vtime.t

(** The cost model's nanoseconds per instruction on this attachment's
    port: the conversion factor between legacy spin-count timeout
    budgets and virtual-time deadlines. *)
val instr_ns : t -> int

(** {1 Causal message ids}

    Every successful send stamps a process-unique 28-bit message id into
    the message's state word (see {!Msg_buffer}); trace events along the
    whole path carry it. These accessors let layers above (e.g.
    {!Flipc_flow.Retrans}) correlate their own sequence numbers with the
    id of the message they just sent or received. 0 = none yet. *)

(** Id stamped by the most recent successful [send]/[send_to] on this
    attachment. *)
val last_msg_id : t -> int

(** Id carried by the most recent message returned from [receive]. *)
val last_recv_msg_id : t -> int

(** Draw a fresh id from the process-wide counter — for subsystems that
    move data outside the per-message send path (e.g. {!Flipc_bulk}
    stamping one id per bulk transfer so its events join causal spans). *)
val fresh_msg_id : unit -> int

(** Usable application payload per message. *)
val payload_bytes : t -> int

(** The engine's observability bundle, if {!Msg_engine.set_obs} attached
    one; sends and receives through this interface stamp the per-message
    latency pipeline on it. *)
val obs : t -> Flipc_obs.Obs.t option

(** {1 Endpoints} *)

(** [allocate_endpoint t ~kind ()] allocates and initializes an endpoint.

    [semaphore] attaches a real-time wakeup semaphore (receive endpoints):
    the engine posts it on each message deposit, enabling [receive_wait]
    and blocking endpoint-group receives.

    The remaining options are the transport-extension controls (the
    paper's future-work items, implemented):
    - [priority] (send endpoints, default 0): the engine transmits from
      higher-priority endpoints first within each loop iteration.
    - [burst] (send endpoints, default unlimited): capacity control — at
      most this many messages leave the endpoint per engine iteration, so
      a bulk stream cannot monopolize the transmit path.
    - [allowed_node]: protection — the engine refuses (and counts) any
      message from this endpoint addressed to a different node. *)
val allocate_endpoint :
  t ->
  kind:Endpoint_kind.t ->
  ?semaphore:Flipc_rt.Rt_semaphore.t ->
  ?priority:int ->
  ?burst:int ->
  ?allowed_node:int ->
  unit ->
  (endpoint, error) result

(** [free_endpoint] returns the endpoint to the table. The application
    must have drained its queue. *)
val free_endpoint : t -> endpoint -> unit

(** [set_priority]/[set_burst] change a send endpoint's transport
    priority / per-iteration burst cap after allocation and bump the
    schedule epoch, so the engine's cached priority schedule picks the
    change up on its next iteration. *)
val set_priority : t -> endpoint -> int -> unit

val set_burst : t -> endpoint -> int -> unit

(** The system-assigned opaque address receivers hand to senders. *)
val address : t -> endpoint -> Address.t

val endpoint_index : endpoint -> int
val kind : endpoint -> Endpoint_kind.t
val semaphore : endpoint -> Flipc_rt.Rt_semaphore.t option

(** [connect t ep addr] sets a send endpoint's destination. *)
val connect : t -> endpoint -> Address.t -> unit

(** {1 Buffers}

    All message buffers are allocated by FLIPC (alignment is internal);
    an application that wants flow control builds it above this layer. *)

val allocate_buffer : t -> (buffer, error) result
val free_buffer : t -> buffer -> unit
val buffer_index : buffer -> int

(** [buffer_of_index t i] rebuilds a handle; for handing buffers between
    application components. *)
val buffer_of_index : t -> int -> buffer

val write_payload : t -> buffer -> ?at:int -> Bytes.t -> unit
val read_payload : t -> buffer -> ?at:int -> int -> Bytes.t

(** [buffer_complete t buf] polls the buffer's state field: has the engine
    finished processing it? *)
val buffer_complete : t -> buffer -> bool

(** {1 Message transfer}

    The five steps of the paper's Figure 2: the receiver posts a buffer
    (1, [post_receive]); the sender queues a message (2, [send]); the
    engine moves it (3); the receiver removes it (4, [receive]); the
    sender reclaims its buffer (5, [reclaim]). *)

(** [send t ep buf] queues [buf] for transmission to the connected
    destination. *)
val send : t -> endpoint -> buffer -> (unit, error) result

(** [send_to] overrides the connected destination for this message. *)
val send_to : t -> endpoint -> buffer -> Address.t -> (unit, error) result

(** [post_receive t ep buf] provides an empty buffer for message arrival. *)
val post_receive : t -> endpoint -> buffer -> (unit, error) result

(** [receive t ep] removes the oldest delivered message, or [None]. *)
val receive : t -> endpoint -> buffer option

(** [reclaim t ep] recovers the oldest transmitted send buffer for reuse,
    or [None]. *)
val reclaim : t -> endpoint -> buffer option

(** [receive_wait t ep thr] blocks [thr] on the endpoint's semaphore until
    a message is available. Raises [Invalid_argument] if the endpoint has
    no semaphore. *)
val receive_wait : t -> endpoint -> Flipc_rt.Sched.thread -> buffer

(** {1 Burst transfer}

    The batched hot path (DESIGN.md §16): each call pays one queue-cursor
    round-trip for the whole run, and the send side rings the doorbell
    and pokes the owning engine shard exactly once per burst. Semantics
    are identical to a loop of the singleton operations — same FIFO
    order, same per-message latency stamps and trace events — only the
    bookkeeping traffic is coalesced. Sized by {!Config.t.app_send_burst}
    / [app_recv_burst] in the stock workloads; burst size 1 degenerates
    to the singleton cost plus one instruction, which is the ablation
    baseline. *)

(** [send_burst t ep bufs] queues [bufs] (in array order) to the
    connected destination, returning how many were accepted — fewer than
    [Array.length bufs] when the queue fills; the caller keeps ownership
    of the overflow. *)
val send_burst : t -> endpoint -> buffer array -> (int, error) result

(** [receive_burst t ep ~out] removes up to [Array.length out] delivered
    messages into [out], oldest first, returning the count. *)
val receive_burst : t -> endpoint -> out:buffer array -> int

(** [post_receive_burst t ep bufs] posts [bufs] as empty receive buffers,
    returning how many the queue accepted. *)
val post_receive_burst : t -> endpoint -> buffer array -> (int, error) result

(** [reclaim_burst t ep ~out] recovers up to [Array.length out] processed
    send buffers into [out], returning the count. *)
val reclaim_burst : t -> endpoint -> out:buffer array -> int

(** {1 Drop accounting} *)

(** Messages discarded on this endpoint since the last reset. *)
val drops : t -> endpoint -> int

(** Read and reset as one logical wait-free operation; no drop event can
    be lost. *)
val drops_read_and_reset : t -> endpoint -> int
