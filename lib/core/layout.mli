(** Address map of the communication buffer.

    The communication buffer is a fixed-size shared region containing
    {e all} memory resources used for messaging: a global header, the
    endpoint table, the per-endpoint buffer-queue slot arrays, and the
    message buffers themselves. This module computes every field's byte
    offset for a given {!Config.t}.

    Two layouts are provided, matching the paper's false-sharing tuning:

    - {b Padded}: each endpoint's fields are segregated by writer into
      three distinct 32-byte cache lines (setup-time constants /
      application-written / engine-written), and each slot array starts on
      a line boundary. Concurrent writes from the application and the
      engine can then never land in the same line.
    - {b Packed}: an endpoint's fields are laid out contiguously with a
      64-byte stride, so application- and engine-written words share lines
      within and across endpoints — the layout the paper started from,
      whose false sharing caused "excessive numbers of cache
      invalidations".

    Message buffers are always 32-byte aligned (the Paragon DMA
    requirement), in both layouts. *)

(** Per-endpoint fields. *)
type field =
  | Ep_type  (** 0 free, 1 send, 2 receive; written at allocation *)
  | Queue_base  (** slot-array offset; written at allocation *)
  | Queue_capacity  (** ring size in slots; written at allocation *)
  | Sem_flag  (** 1 if a wakeup semaphore is attached; written at allocation *)
  | Priority
      (** send-endpoint transport priority (higher scanned first by the
          engine); written at allocation. Part of the real-time transport
          prioritization extension (the paper's future work) *)
  | Burst
      (** capacity control: maximum messages the engine transmits from
          this endpoint per loop iteration (0 = unlimited); written at
          allocation *)
  | Allowed_node
      (** protection: 0 = messages may go anywhere; [n+1] = endpoint may
          only send to node [n]; written at allocation and enforced by the
          engine — the "restrict where messages can be sent" extension *)
  | Dest_addr  (** default destination ({!Address}); application-written *)
  | Release  (** ring head: next slot the application fills *)
  | Acquire  (** ring tail: next slot the application reclaims *)
  | Drop_read  (** drop-counter snapshot; application-written *)
  | Send_pending
      (** send doorbell: a counter the application bumps after every
          release onto a send endpoint's queue (single writer — the
          application side, like {!Drop_read}). The engine keeps a private
          shadow copy and visits the endpoint only when the shared word
          differs from the shadow, making the idle scan work-proportional.
          See DESIGN.md §11 *)
  | Lock  (** test-and-set word for the locked interface variants *)
  | Process  (** ring middle: next slot the engine processes; engine-written *)
  | Drop_count  (** messages discarded; engine-written *)
  | Scan_stamp
      (** engine loop-progress bookkeeping, written on every scan of an
          allocated endpoint. In the padded layout it lives in the
          engine-only line; in the packed layout it sits inside the
          endpoint record, so the engine's polling loop continuously
          invalidates the application's cached copy of the endpoint — the
          "excessive numbers of cache invalidations" of the paper's second
          tuning problem *)

(** Global (per-buffer) fields. *)
type global =
  | Magic
  | G_message_bytes
  | G_endpoints
  | G_queue_capacity
  | G_total_buffers
  | Engine_iterations  (** engine-written statistics *)
  | Engine_sends
  | Engine_recvs
  | Engine_drops
  | Engine_rejects  (** messages rejected by validity checks *)
  | G_schedule_epoch
      (** schedule-invalidation epoch: bumped by the application interface
          on endpoint allocate/free and priority/burst changes; the engine
          rebuilds its cached priority schedule only when this word
          differs from its cached copy. Application-written, engine-read *)
  | G_doorbell_seq
      (** doorbell summary: bumped by the application interface after
          every per-endpoint doorbell ring. The engine polls this one
          word per iteration and scans the per-endpoint doorbell words
          only when it changed, which keeps idle-iteration load traffic
          flat in the endpoint count. Application-written, engine-read;
          on the padded layout it owns a cache line *)

(** Who writes a field during steady-state operation; drives the
    no-concurrent-writers and line-disjointness property tests. *)
type writer = App | Engine | Setup

val writer_of_field : field -> writer

val all_fields : field list

type t

(** [compute ?base config] lays the region out starting at byte [base] of
    the node's memory (default 0; must be cache-line aligned). Several
    communication buffers can coexist on one node at different bases — the
    multi-application extension. *)
val compute : ?base:int -> Config.t -> t

val config : t -> Config.t

(** Starting byte of the region. *)
val base : t -> int

(** Total bytes of the communication buffer region (excluding [base]). *)
val total_bytes : t -> int

val cache_line_bytes : int

(** {1 Addresses} *)

val global_addr : t -> global -> int
val ep_field : t -> ep:int -> field -> int
val slot_addr : t -> ep:int -> slot:int -> int

(** [buffer_addr t i] is the byte offset of message buffer [i]. *)
val buffer_addr : t -> int -> int

(** [buffer_of_addr t addr] is the buffer index iff [addr] is exactly a
    buffer start; the engine's validity check. *)
val buffer_of_addr : t -> int -> int option

(** {1 Message-buffer internal offsets (relative to [buffer_addr])} *)

(** Word 0: destination address. *)
val buf_dest_off : int

(** Word 1: processing state. *)
val buf_state_off : int

(** First payload byte (= {!Config.header_bytes}). *)
val buf_payload_off : int

(** {1 Introspection for tests} *)

(** Byte range [(lo, hi)] of the endpoint table + slot arrays. *)
val control_region : t -> int * int

(** Byte range of the message buffers. *)
val buffer_region : t -> int * int
