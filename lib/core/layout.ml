type field =
  | Ep_type
  | Queue_base
  | Queue_capacity
  | Sem_flag
  | Priority
  | Burst
  | Allowed_node
  | Dest_addr
  | Release
  | Acquire
  | Drop_read
  | Send_pending
  | Lock
  | Process
  | Drop_count
  | Scan_stamp

type global =
  | Magic
  | G_message_bytes
  | G_endpoints
  | G_queue_capacity
  | G_total_buffers
  | Engine_iterations
  | Engine_sends
  | Engine_recvs
  | Engine_drops
  | Engine_rejects
  | G_schedule_epoch
  | G_doorbell_seq

type writer = App | Engine | Setup

let writer_of_field = function
  | Ep_type | Queue_base | Queue_capacity | Sem_flag | Priority | Burst
  | Allowed_node ->
      Setup
  | Dest_addr | Release | Acquire | Drop_read | Send_pending | Lock -> App
  | Process | Drop_count | Scan_stamp -> Engine

let all_fields =
  [
    Ep_type;
    Queue_base;
    Queue_capacity;
    Sem_flag;
    Priority;
    Burst;
    Allowed_node;
    Dest_addr;
    Release;
    Acquire;
    Drop_read;
    Send_pending;
    Lock;
    Process;
    Drop_count;
    Scan_stamp;
  ]

let cache_line_bytes = 32

type t = {
  config : Config.t;
  base : int;
  ep_table_off : int;
  ep_stride : int;
  slots_off : int;
  slots_stride : int;
  buffers_off : int;
  total : int;
}

let round_up n m = (n + m - 1) / m * m

(* Field offsets within an endpoint record.

   Padded: three writer-segregated cache lines.
   Packed: sixteen contiguous words (64-byte stride), the pre-tuning layout. *)
let field_off mode field =
  match (mode : Config.layout_mode) with
  | Config.Padded -> (
      match field with
      | Ep_type -> 0
      | Queue_base -> 4
      | Queue_capacity -> 8
      | Sem_flag -> 12
      | Priority -> 16
      | Burst -> 20
      | Allowed_node -> 24
      | Release -> 32
      | Acquire -> 36
      | Drop_read -> 40
      | Dest_addr -> 44
      | Process -> 64
      | Drop_count -> 68
      | Scan_stamp -> 72
      | Lock -> 96
      | Send_pending -> 48)
  | Config.Packed -> (
      (* The 64-byte stride puts every record at the same line phase
         (table base 44, so record bytes [20, 52) are one line): the
         engine's Scan_stamp bookkeeping at 44 lands in the same line as
         the application's ring cursors (Release/Acquire) for {e every}
         endpoint — each engine scan invalidates the application's cached
         cursor line, the paper's "excessive numbers of cache
         invalidations". *)
      match field with
      | Ep_type -> 0
      | Queue_base -> 4
      | Queue_capacity -> 8
      | Sem_flag -> 12
      | Priority -> 16
      | Burst -> 20
      | Allowed_node -> 24
      | Dest_addr -> 28
      | Release -> 32
      | Acquire -> 36
      | Drop_read -> 40
      | Scan_stamp -> 44
      | Process -> 48
      | Drop_count -> 52
      | Lock -> 56
      | Send_pending -> 60)

let compute ?(base = 0) config =
  let config = Config.validate_exn config in
  if base < 0 || base mod cache_line_bytes <> 0 then
    invalid_arg "Layout.compute: base must be a non-negative line multiple";
  let globals_bytes, ep_stride =
    (* Padded: two lines of headers/stats plus a third line owned by the
       doorbell summary word ([G_doorbell_seq]). Packed: headers, stats,
       epoch and summary appended contiguously. *)
    match config.Config.layout_mode with
    | Config.Padded -> (96, 128)
    | Config.Packed -> (48, 64)
  in
  let ep_table_off = base + globals_bytes in
  let slots_off = ep_table_off + (config.Config.endpoints * ep_stride) in
  let slots_bytes = config.Config.queue_capacity * 4 in
  let slots_stride =
    match config.Config.layout_mode with
    | Config.Padded -> round_up slots_bytes cache_line_bytes
    | Config.Packed -> slots_bytes
  in
  let slots_end = slots_off + (config.Config.endpoints * slots_stride) in
  let buffers_off = round_up slots_end cache_line_bytes in
  let total =
    buffers_off + (config.Config.total_buffers * config.Config.message_bytes)
    - base
  in
  {
    config;
    base;
    ep_table_off;
    ep_stride;
    slots_off;
    slots_stride;
    buffers_off;
    total;
  }

let config t = t.config
let base t = t.base
let total_bytes t = t.total

(* In the padded layout the engine statistics live in their own line. In
   the packed layout they are appended right before the endpoint table, so
   the highest-frequency engine write (the iteration counter) lands in the
   same 32-byte line as endpoint 0's application-written fields — exactly
   the engine/application false sharing the paper's tuning eliminated. *)
let global_addr t g =
  let stats_base =
    match t.config.Config.layout_mode with Config.Padded -> 32 | Config.Packed -> 20
  in
  match g with
  | Magic -> t.base
  | G_message_bytes -> t.base + 4
  | G_endpoints -> t.base + 8
  | G_queue_capacity -> t.base + 12
  | G_total_buffers -> t.base + 16
  | Engine_drops -> t.base + stats_base
  | Engine_rejects -> t.base + stats_base + 4
  | Engine_sends -> t.base + stats_base + 8
  | Engine_recvs -> t.base + stats_base + 12
  | Engine_iterations -> t.base + stats_base + 16
  | G_schedule_epoch -> (
      (* Application-written, engine-read; bumped only on endpoint
         allocate/free/priority/burst changes. Padded: the spare word of
         the setup-constants line (written rarely, never by the engine).
         Packed: appended after the engine statistics — one more word
         sharing lines with everything else, in the pre-tuning spirit. *)
      match t.config.Config.layout_mode with
      | Config.Padded -> t.base + 20
      | Config.Packed -> t.base + stats_base + 20)
  | G_doorbell_seq -> (
      (* Application-written doorbell summary, bumped after every
         per-endpoint doorbell ring; the engine polls this one word per
         iteration instead of [sched_len] shadow words. Padded: a line of
         its own — the word is write-hot on the application side and
         poll-hot on the engine side, so sharing a line with either
         side's other traffic would put the miss back on every iteration.
         Packed: appended to the shared jumble, pre-tuning spirit. *)
      match t.config.Config.layout_mode with
      | Config.Padded -> t.base + 64
      | Config.Packed -> t.base + stats_base + 24)

let check_ep t ep =
  if ep < 0 || ep >= t.config.Config.endpoints then
    invalid_arg "Layout: endpoint index out of range"

let ep_field t ~ep field =
  check_ep t ep;
  t.ep_table_off + (ep * t.ep_stride)
  + field_off t.config.Config.layout_mode field

let slot_addr t ~ep ~slot =
  check_ep t ep;
  if slot < 0 || slot >= t.config.Config.queue_capacity then
    invalid_arg "Layout: slot index out of range";
  t.slots_off + (ep * t.slots_stride) + (slot * 4)

let buffer_addr t i =
  if i < 0 || i >= t.config.Config.total_buffers then
    invalid_arg "Layout: buffer index out of range";
  t.buffers_off + (i * t.config.Config.message_bytes)

let buffer_of_addr t addr =
  let msg = t.config.Config.message_bytes in
  if addr < t.buffers_off then None
  else
    let rel = addr - t.buffers_off in
    if rel mod msg <> 0 then None
    else
      let i = rel / msg in
      if i < t.config.Config.total_buffers then Some i else None

let buf_dest_off = 0
let buf_state_off = 4
let buf_payload_off = Config.header_bytes
let control_region t = (t.ep_table_off, t.buffers_off)
let buffer_region t = (t.buffers_off, t.base + t.total)
