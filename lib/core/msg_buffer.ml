module Mem_port = Flipc_memsim.Mem_port

type state = Idle | Complete

let state_to_word = function Idle -> 0 | Complete -> 2

(* The state word's two low bits hold the state; the bits above carry the
   28-bit causal message id stamped at send (0 = unstamped). Decoding
   masks the id off so stamped words still parse. *)
let state_of_word w =
  match w land 3 with 0 -> Some Idle | 2 -> Some Complete | _ -> None

let max_msg_id = 0xFFF_FFFF
let mid_of_word w = (w lsr 2) land max_msg_id

let set_dest port layout ~buf addr =
  Mem_port.store port
    (Layout.buffer_addr layout buf + Layout.buf_dest_off)
    (Address.to_word addr)

let dest port layout ~buf =
  Address.of_word
    (Mem_port.load port (Layout.buffer_addr layout buf + Layout.buf_dest_off))

(* [set_state] preserves the message id already in the word: the engine
   marking a deposited buffer [Complete] must not erase the sender's
   stamp. The extra read is untimed ([peek]), so the store cost is
   unchanged. *)
let set_state port layout ~buf s =
  let addr = Layout.buffer_addr layout buf + Layout.buf_state_off in
  let old = Mem_port.peek port addr in
  Mem_port.store port addr (old land lnot 3 lor state_to_word s)

let set_state_and_id port layout ~buf ~mid s =
  Mem_port.store port
    (Layout.buffer_addr layout buf + Layout.buf_state_off)
    (((mid land max_msg_id) lsl 2) lor state_to_word s)

let msg_id port layout ~buf =
  mid_of_word
    (Mem_port.peek port (Layout.buffer_addr layout buf + Layout.buf_state_off))

let state port layout ~buf =
  state_of_word
    (Mem_port.load port (Layout.buffer_addr layout buf + Layout.buf_state_off))

let payload_bytes layout = Config.payload_bytes (Layout.config layout)

let check_payload_range layout ~at ~len =
  if at < 0 || len < 0 || at + len > payload_bytes layout then
    invalid_arg "Msg_buffer: payload range overruns fixed message size"

let write_payload port layout ~buf ?(at = 0) data =
  check_payload_range layout ~at ~len:(Bytes.length data);
  let pos = Layout.buffer_addr layout buf + Layout.buf_payload_off + at in
  Mem_port.write_bytes port ~pos data

let read_payload port layout ~buf ?(at = 0) len =
  check_payload_range layout ~at ~len;
  let pos = Layout.buffer_addr layout buf + Layout.buf_payload_off + at in
  Mem_port.read_bytes port ~pos ~len

let region layout ~buf =
  ( Layout.buffer_addr layout buf,
    (Layout.config layout).Config.message_bytes )

(* Frame checksum trailer: the last [Config.checksum_bytes] of the
   message hold an FNV-1a digest of everything before them (header words
   included, so a bit flip in the destination or state word is caught the
   same as one in the payload). [payload_bytes] already excludes the
   trailer when the feature is on, so the application cannot write over
   it. *)

let checksum_enabled layout = (Layout.config layout).Config.frame_checksum

let checksum_off layout =
  (Layout.config layout).Config.message_bytes - Config.checksum_bytes

(* Timed like the send path it runs on: one block read of the covered
   bytes (charged per cache line), an instruction charge for the hash
   arithmetic (word-at-a-time), and the trailer store. *)
let store_checksum port layout ~buf =
  let base = Layout.buffer_addr layout buf in
  let len = checksum_off layout in
  let image = Mem_port.read_bytes port ~pos:base ~len in
  Mem_port.instr port (len / 4);
  Mem_port.store port (base + len) (Checksum.fold30 (Checksum.of_bytes image))

(* Read the trailer as the full unsigned 32-bit word. The stored digest
   is [Checksum.fold30]-folded so a clean trailer's top two bits are
   always zero (the 30-bit [Shared_mem.store_int] word invariant), but
   the wire image itself is raw bytes — corruption can flip those bits,
   and masking them here would make such damage undetectable. *)
let checksum_of_image bytes =
  let len = Bytes.length bytes in
  if len < Config.checksum_bytes then
    invalid_arg "Msg_buffer.checksum_of_image: short"
  else
    Int32.to_int (Bytes.get_int32_le bytes (len - Config.checksum_bytes))
    land 0xFFFF_FFFF

let image_checksum_ok bytes =
  let len = Bytes.length bytes in
  len >= Config.checksum_bytes
  && Checksum.fold30 (Checksum.of_bytes ~len:(len - Config.checksum_bytes) bytes)
     = checksum_of_image bytes

let dest_of_image bytes =
  if Bytes.length bytes < 4 then invalid_arg "Msg_buffer.dest_of_image: short";
  Address.of_word (Int32.to_int (Bytes.get_int32_le bytes 0))

let msg_id_of_image bytes =
  if Bytes.length bytes < 8 then 0
  else mid_of_word (Int32.to_int (Bytes.get_int32_le bytes 4) land 0x3FFF_FFFF)

let peek_state port layout ~buf =
  Mem_port.peek port (Layout.buffer_addr layout buf + Layout.buf_state_off)
