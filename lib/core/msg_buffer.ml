module Mem_port = Flipc_memsim.Mem_port

type state = Idle | Complete

let state_to_word = function Idle -> 0 | Complete -> 2

(* The state word's two low bits hold the state; the bits above carry the
   28-bit causal message id stamped at send (0 = unstamped). Decoding
   masks the id off so stamped words still parse. *)
let state_of_word w =
  match w land 3 with 0 -> Some Idle | 2 -> Some Complete | _ -> None

let max_msg_id = 0xFFF_FFFF
let mid_of_word w = (w lsr 2) land max_msg_id

let set_dest port layout ~buf addr =
  Mem_port.store port
    (Layout.buffer_addr layout buf + Layout.buf_dest_off)
    (Address.to_word addr)

let dest port layout ~buf =
  Address.of_word
    (Mem_port.load port (Layout.buffer_addr layout buf + Layout.buf_dest_off))

(* [set_state] preserves the message id already in the word: the engine
   marking a deposited buffer [Complete] must not erase the sender's
   stamp. The extra read is untimed ([peek]), so the store cost is
   unchanged. *)
let set_state port layout ~buf s =
  let addr = Layout.buffer_addr layout buf + Layout.buf_state_off in
  let old = Mem_port.peek port addr in
  Mem_port.store port addr (old land lnot 3 lor state_to_word s)

let set_state_and_id port layout ~buf ~mid s =
  Mem_port.store port
    (Layout.buffer_addr layout buf + Layout.buf_state_off)
    (((mid land max_msg_id) lsl 2) lor state_to_word s)

let msg_id port layout ~buf =
  mid_of_word
    (Mem_port.peek port (Layout.buffer_addr layout buf + Layout.buf_state_off))

let state port layout ~buf =
  state_of_word
    (Mem_port.load port (Layout.buffer_addr layout buf + Layout.buf_state_off))

let payload_bytes layout = Config.payload_bytes (Layout.config layout)

let check_payload_range layout ~at ~len =
  if at < 0 || len < 0 || at + len > payload_bytes layout then
    invalid_arg "Msg_buffer: payload range overruns fixed message size"

let write_payload port layout ~buf ?(at = 0) data =
  check_payload_range layout ~at ~len:(Bytes.length data);
  let pos = Layout.buffer_addr layout buf + Layout.buf_payload_off + at in
  Mem_port.write_bytes port ~pos data

let read_payload port layout ~buf ?(at = 0) len =
  check_payload_range layout ~at ~len;
  let pos = Layout.buffer_addr layout buf + Layout.buf_payload_off + at in
  Mem_port.read_bytes port ~pos ~len

let region layout ~buf =
  ( Layout.buffer_addr layout buf,
    (Layout.config layout).Config.message_bytes )

let dest_of_image bytes =
  if Bytes.length bytes < 4 then invalid_arg "Msg_buffer.dest_of_image: short";
  Address.of_word (Int32.to_int (Bytes.get_int32_le bytes 0))

let msg_id_of_image bytes =
  if Bytes.length bytes < 8 then 0
  else mid_of_word (Int32.to_int (Bytes.get_int32_le bytes 4) land 0x3FFF_FFFF)

let peek_state port layout ~buf =
  Mem_port.peek port (Layout.buffer_addr layout buf + Layout.buf_state_off)
