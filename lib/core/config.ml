type lock_mode = Lock_free | Test_and_set
type layout_mode = Padded | Packed
type sched_mode = Doorbell | Full_scan

type t = {
  message_bytes : int;
  endpoints : int;
  queue_capacity : int;
  total_buffers : int;
  lock_mode : lock_mode;
  layout_mode : layout_mode;
  validity_checks : bool;
  engine_poll_ns : int;
  engine_poll_jitter : float;
  engine_park_after : int;
  engine_rx_burst : int;
  sched_mode : sched_mode;
  validity_check_instrs : int;
  dma_setup_ns : int;
  dma_ns_per_byte : float;
  frame_checksum : bool;
  engine_shards : int;
  engine_tx_batch : int;
  app_send_burst : int;
  app_recv_burst : int;
}

let header_bytes = 8
let checksum_bytes = 4

let payload_bytes t =
  t.message_bytes - header_bytes - if t.frame_checksum then checksum_bytes else 0

let default =
  {
    message_bytes = 128;
    endpoints = 8;
    queue_capacity = 9;
    total_buffers = 64;
    lock_mode = Lock_free;
    layout_mode = Padded;
    validity_checks = false;
    engine_poll_ns = 600;
    engine_poll_jitter = 0.25;
    engine_park_after = 64;
    engine_rx_burst = 32;
    sched_mode = Doorbell;
    validity_check_instrs = 50;
    dma_setup_ns = 550;
    dma_ns_per_byte = 0.625;
    frame_checksum = false;
    engine_shards = 1;
    engine_tx_batch = 1;
    app_send_burst = 1;
    app_recv_burst = 1;
  }

let round_up n multiple = (n + multiple - 1) / multiple * multiple

let with_message_bytes t n =
  { t with message_bytes = max 64 (round_up n 32) }

let for_payload t n =
  with_message_bytes t
    (n + header_bytes + if t.frame_checksum then checksum_bytes else 0)

let validate t =
  if t.message_bytes < 64 then Error "message_bytes must be at least 64"
  else if t.message_bytes mod 32 <> 0 then
    Error "message_bytes must be a multiple of 32"
  else if t.endpoints <= 0 then Error "endpoints must be positive"
  else if t.endpoints > 0xFFFF then Error "endpoints must fit in 16 bits"
  else if t.queue_capacity < 2 then
    Error "queue_capacity must be at least 2 (one-slot-empty ring)"
  else if t.total_buffers <= 0 then Error "total_buffers must be positive"
  else if t.engine_poll_ns < 0 then Error "engine_poll_ns must be >= 0"
  else if t.engine_poll_jitter < 0. || t.engine_poll_jitter > 1. then
    Error "engine_poll_jitter must be in [0, 1]"
  else if t.engine_park_after < 1 then Error "engine_park_after must be >= 1"
  else if t.engine_rx_burst < 1 then Error "engine_rx_burst must be >= 1"
  else if t.dma_setup_ns < 0 || t.dma_ns_per_byte < 0. then
    Error "DMA costs must be >= 0"
  else if t.engine_shards < 1 || t.engine_shards > 64 then
    Error "engine_shards must be in [1, 64]"
  else if t.engine_tx_batch < 1 then Error "engine_tx_batch must be >= 1"
  else if t.app_send_burst < 1 then Error "app_send_burst must be >= 1"
  else if t.app_recv_burst < 1 then Error "app_recv_burst must be >= 1"
  else Ok t

let validate_exn t =
  match validate t with Ok t -> t | Error m -> invalid_arg ("Config: " ^ m)

let pp fmt t =
  Fmt.pf fmt "{msg=%dB eps=%d q=%d bufs=%d %s %s %s rx-burst=%d checks=%b%s%s%s}"
    t.message_bytes t.endpoints t.queue_capacity t.total_buffers
    (match t.lock_mode with Lock_free -> "lock-free" | Test_and_set -> "locked")
    (match t.layout_mode with Padded -> "padded" | Packed -> "packed")
    (match t.sched_mode with Doorbell -> "doorbell" | Full_scan -> "full-scan")
    t.engine_rx_burst t.validity_checks
    (if t.frame_checksum then " cksum" else "")
    (if t.engine_shards > 1 then Fmt.str " shards=%d" t.engine_shards else "")
    (if t.engine_tx_batch > 1 || t.app_send_burst > 1 || t.app_recv_burst > 1
     then
       Fmt.str " batch=tx%d/send%d/recv%d" t.engine_tx_batch t.app_send_burst
         t.app_recv_burst
     else "")
