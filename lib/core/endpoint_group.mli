(** Endpoint groups: receive from any of several endpoints.

    Per the paper, the group abstraction is implemented {e entirely in the
    library}: the resource-control model ties buffers to endpoints, so the
    per-endpoint queues cannot be merged. [receive_any] therefore scans
    member endpoints round-robin (rotating the start point for fairness),
    and the blocking variant relies on every member sharing the group's
    real-time semaphore, which the engine posts on each deposit. *)

type t

(** [create api ()] makes an empty group. [semaphore] enables
    [receive_any_wait]; member endpoints must then be allocated with this
    same semaphore. *)
val create : ?semaphore:Flipc_rt.Rt_semaphore.t -> Api.t -> t

val semaphore : t -> Flipc_rt.Rt_semaphore.t option

(** [add t ep] adds a receive endpoint. Raises [Invalid_argument] on a
    send endpoint, a duplicate, or (if the group blocks) an endpoint whose
    semaphore differs from the group's. If the group has a semaphore it is
    posted once, so threads already blocked in [receive_any_wait] rescan
    and pick up any messages the new member was holding before it joined
    (their deposit-time posts were consumed by fruitless rescans). *)
val add : t -> Api.endpoint -> unit

(** [remove t ep] drops a member (no-op if absent). The round-robin
    cursor tracks the compaction, so the rotation continues from the same
    member it would have visited next and no survivor loses its turn. *)
val remove : t -> Api.endpoint -> unit
val members : t -> Api.endpoint list
val size : t -> int

(** [receive_any t] polls members round-robin; the scan starts after the
    last successful endpoint so heavy traffic on one member cannot starve
    the others. *)
val receive_any : t -> (Api.endpoint * Api.buffer) option

(** [receive_any_wait t thr] blocks [thr] on the group semaphore until some
    member has a message. *)
val receive_any_wait : t -> Flipc_rt.Sched.thread -> Api.endpoint * Api.buffer

(** Total drops across members (non-resetting). *)
val drops : t -> int
