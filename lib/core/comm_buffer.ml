module Shared_mem = Flipc_memsim.Shared_mem

let magic = 0x0F11C

type t = {
  config : Config.t;
  layout : Layout.t;
  mem : Shared_mem.t;
  ep_offset : int;
  mutable free_endpoints : int list;
  mutable free_buffers : int list;
  semaphores : Flipc_rt.Rt_semaphore.t option array;
}

let create ?(base = 0) ?(ep_offset = 0) config mem =
  let config = Config.validate_exn config in
  let layout = Layout.compute ~base config in
  if base + Layout.total_bytes layout > Shared_mem.size mem then
    invalid_arg "Comm_buffer.create: region does not fit in node memory";
  let set g v = Shared_mem.store_int mem (Layout.global_addr layout g) v in
  set Layout.Magic magic;
  set Layout.G_message_bytes config.Config.message_bytes;
  set Layout.G_endpoints config.Config.endpoints;
  set Layout.G_queue_capacity config.Config.queue_capacity;
  set Layout.G_total_buffers config.Config.total_buffers;
  set Layout.G_schedule_epoch 0;
  set Layout.G_doorbell_seq 0;
  let upto n = List.init n Fun.id in
  {
    config;
    layout;
    mem;
    ep_offset;
    free_endpoints = upto config.Config.endpoints;
    free_buffers = upto config.Config.total_buffers;
    semaphores = Array.make config.Config.endpoints None;
  }

let config t = t.config
let layout t = t.layout
let mem t = t.mem
let ep_offset t = t.ep_offset

let alloc_endpoint t =
  match t.free_endpoints with
  | [] -> None
  | ep :: rest ->
      t.free_endpoints <- rest;
      Some ep

let free_endpoint t ep =
  if List.mem ep t.free_endpoints then
    invalid_arg "Comm_buffer.free_endpoint: double free";
  t.free_endpoints <- ep :: t.free_endpoints

let alloc_buffer t =
  match t.free_buffers with
  | [] -> None
  | buf :: rest ->
      t.free_buffers <- rest;
      Some buf

let free_buffer t buf =
  if List.mem buf t.free_buffers then
    invalid_arg "Comm_buffer.free_buffer: double free";
  t.free_buffers <- buf :: t.free_buffers

let free_buffer_count t = List.length t.free_buffers
let free_endpoint_count t = List.length t.free_endpoints
let set_semaphore t ~ep sem = t.semaphores.(ep) <- sem
let semaphore t ~ep = t.semaphores.(ep)
