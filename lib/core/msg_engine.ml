module Sim = Flipc_sim.Engine
module Prng = Flipc_sim.Prng
module Mem_port = Flipc_memsim.Mem_port
module Dma = Flipc_net.Dma
module Obs = Flipc_obs.Obs
module Event = Flipc_obs.Event
module Latency = Flipc_obs.Latency

type transport = {
  tname : string;
  transmit : dst:Address.t -> Bytes.t -> (unit, [ `Bad_dest ]) result;
}

type stats = {
  mutable iterations : int;
  mutable sends : int;
  mutable recvs : int;
  mutable drops : int;
  mutable rejects : int;
  mutable bad_dest : int;
  mutable forbidden : int;
  mutable parks : int;
}

type t = {
  sim : Sim.t;
  node : int;
  layouts : Layout.t array;  (* one communication buffer per element *)
  config : Config.t;
  port : Mem_port.t;
  dma : Dma.t;
  transport : transport;
  incoming : Bytes.t Queue.t;
  mutable running : bool;
  mutable started : bool;
  mutable parked : (unit -> unit) option;
  mutable idle : int;
  prng : Prng.t;
  stats : stats;
  mutable wakeup_hook : (ep:int -> unit) option;
  mutable trace : Flipc_sim.Trace.t option;
  mutable obs : Obs.t option;
}

let create ~sim ~node ~comms ~port ~dma ~transport =
  (match comms with
  | [] -> invalid_arg "Msg_engine.create: need at least one comm buffer"
  | first :: rest ->
      let c0 = Comm_buffer.config first in
      List.iter
        (fun c ->
          if Comm_buffer.config c <> c0 then
            invalid_arg
              "Msg_engine.create: all comm buffers must share one config")
        rest);
  {
    sim;
    node;
    layouts = Array.of_list (List.map Comm_buffer.layout comms);
    config = Comm_buffer.config (List.hd comms);
    port;
    dma;
    transport;
    incoming = Queue.create ();
    running = false;
    started = false;
    parked = None;
    idle = 0;
    prng = Prng.create ~seed:(0x5EED + node);
    trace = None;
    obs = None;
    stats =
      {
        iterations = 0;
        sends = 0;
        recvs = 0;
        drops = 0;
        rejects = 0;
        bad_dest = 0;
        forbidden = 0;
        parks = 0;
      };
    wakeup_hook = None;
  }

let node t = t.node
let stats t = t.stats
let set_wakeup_hook t f = t.wakeup_hook <- Some f
let set_trace t trace = t.trace <- Some trace

let set_obs t obs =
  t.obs <- Some obs;
  let m = Obs.metrics obs in
  let probe name f =
    Flipc_obs.Metrics.probe m
      (Printf.sprintf "node%d.engine.%s" t.node name)
      (fun () -> float_of_int (f ()))
  in
  probe "iterations" (fun () -> t.stats.iterations);
  probe "sends" (fun () -> t.stats.sends);
  probe "recvs" (fun () -> t.stats.recvs);
  probe "drops" (fun () -> t.stats.drops);
  probe "rejects" (fun () -> t.stats.rejects);
  probe "bad_dest" (fun () -> t.stats.bad_dest);
  probe "forbidden" (fun () -> t.stats.forbidden);
  probe "parks" (fun () -> t.stats.parks)

let obs t = t.obs

(* Typed trace event; one branch when tracing is off. [ev] is a thunk so
   disabled tracing never allocates the event. *)
let emit t ev =
  match t.obs with
  | Some o when Obs.tracing o -> Obs.event o (ev ())
  | _ -> ()

(* Latency stamping is always on when an observability bundle is
   attached: it costs host time only, never virtual time. *)
let lat t f = match t.obs with Some o -> f (Obs.latency o) | None -> ()

let trace t fmt =
  match t.trace with
  | Some tr ->
      Flipc_sim.Trace.recordf tr ~now:(Sim.now t.sim)
        ~tag:(Printf.sprintf "engine-%d" t.node)
        fmt
  | None -> Fmt.kstr (fun _ -> ()) fmt

let poke t =
  match t.parked with
  | Some resume ->
      t.parked <- None;
      resume ()
  | None -> ()

let deliver t image =
  (* Wire-arrival stamp: this is the instant the image reaches the
     destination engine, before the engine loop gets around to handling
     it. Handling order is queue (FIFO) order, which keeps the latency
     pairing exact. *)
  let dest = Msg_buffer.dest_of_image image in
  if not (Address.is_null dest) then begin
    let ep = Address.endpoint dest in
    lat t (fun l -> Latency.wire_rx l ~now:(Sim.now t.sim) ~node:t.node ~ep);
    emit t (fun () -> Event.Wire_rx { node = t.node; ep })
  end;
  Queue.push image t.incoming;
  poke t

let stop t =
  t.running <- false;
  poke t

let running t = t.running

(* Node-global endpoint index -> (communication buffer, local index). *)
let resolve t global_ep =
  let eps = t.config.Config.endpoints in
  let idx = global_ep / eps in
  if global_ep < 0 || idx >= Array.length t.layouts then None
  else Some (t.layouts.(idx), global_ep mod eps)

let bump_global t layout g =
  let addr = Layout.global_addr layout g in
  Mem_port.store t.port addr (Mem_port.peek t.port addr + 1)

let reject t layout =
  t.stats.rejects <- t.stats.rejects + 1;
  bump_global t layout Layout.Engine_rejects

let charge_validity t =
  if t.config.Config.validity_checks then
    Mem_port.instr t.port t.config.Config.validity_check_instrs

(* An arriving message: demultiplex to its receive endpoint and deposit it
   in the next posted buffer, or discard it and count the drop. The
   receiving node is thereby always prepared to accept from the
   interconnect, which is what makes the optimistic protocol deadlock-free
   on a reliable fabric. *)
let handle_incoming t image =
  (* Demultiplex + protocol-framework dispatch on the coprocessor. *)
  Mem_port.instr t.port 15;
  let dest = Msg_buffer.dest_of_image image in
  charge_validity t;
  let discard reason global_ep =
    if global_ep >= 0 then
      lat t (fun l -> Latency.discarded l ~node:t.node ~ep:global_ep);
    emit t (fun () -> Event.Drop { node = t.node; ep = global_ep; reason })
  in
  if Address.is_null dest then begin
    discard Event.Bad_destination (-1);
    reject t t.layouts.(0)
  end
  else
    let global_ep = Address.endpoint dest in
    match resolve t global_ep with
    | None ->
        discard Event.Bad_destination global_ep;
        reject t t.layouts.(0)
    | Some (layout, ep) -> (
        let kind_word =
          Mem_port.load t.port (Layout.ep_field layout ~ep Layout.Ep_type)
        in
        match Endpoint_kind.of_word kind_word with
        | Some Endpoint_kind.Recv -> (
            match Buffer_queue.engine_peek t.port layout ~ep with
            | None ->
                Drop_counter.engine_increment t.port layout ~ep;
                t.stats.drops <- t.stats.drops + 1;
                trace t "discard: no posted buffer on ep %d" global_ep;
                discard Event.No_posted_buffer global_ep;
                bump_global t layout Layout.Engine_drops
            | Some (buf_addr, cursor) -> (
                match Layout.buffer_of_addr layout buf_addr with
                | None ->
                    (* The application queued a corrupt pointer (or one
                       aimed at another application's region). Skip the
                       slot so the queue cannot wedge the engine, and
                       discard the message. *)
                    discard Event.Corrupt_slot global_ep;
                    reject t layout;
                    Buffer_queue.engine_advance t.port layout ~ep ~cursor
                | Some buf ->
                    Dma.write t.dma ~pos:buf_addr image;
                    Msg_buffer.set_state t.port layout ~buf Msg_buffer.Complete;
                    Buffer_queue.engine_advance t.port layout ~ep ~cursor;
                    t.stats.recvs <- t.stats.recvs + 1;
                    trace t "deposit: ep %d buffer %d" global_ep buf;
                    lat t (fun l ->
                        Latency.deposited l ~node:t.node ~ep:global_ep);
                    emit t (fun () ->
                        Event.Deposit { node = t.node; ep = global_ep });
                    bump_global t layout Layout.Engine_recvs;
                    let sem =
                      Mem_port.load t.port
                        (Layout.ep_field layout ~ep Layout.Sem_flag)
                    in
                    if sem = 1 then begin
                      Mem_port.instr t.port 8;
                      match t.wakeup_hook with
                      | Some hook -> hook ~ep:global_ep
                      | None -> ()
                    end))
        | Some Endpoint_kind.Send | None ->
            discard Event.Bad_destination global_ep;
            reject t layout)

(* Protection check: an endpoint may be restricted to one destination
   node ("restrict where messages can be sent"). 0 means unrestricted. *)
let destination_allowed t layout ~ep ~dest =
  let allowed =
    Mem_port.load t.port (Layout.ep_field layout ~ep Layout.Allowed_node)
  in
  allowed = 0 || (not (Address.is_null dest) && Address.node dest = allowed - 1)

(* Transmit messages the application has released on one send endpoint,
   at most [burst] per call; with no configured burst the cap is the ring
   capacity. An uncapped drain loop would let one saturating producer
   starve every other endpoint and the receive path: the producer can
   refill the ring as fast as the engine empties it, so the engine's
   non-preemptible loop must bound its work per endpoint per iteration.
   Returns true if any work was done. *)
let process_sends t layout ~global_ep ~ep ~burst =
  let limit =
    if burst > 0 then burst else t.config.Config.queue_capacity - 1
  in
  let progressed = ref false in
  let transmitted = ref 0 in
  let continue = ref true in
  while !continue do
    if !transmitted >= limit then continue := false
    else
      match Buffer_queue.engine_peek t.port layout ~ep with
      | None -> continue := false
      | Some (buf_addr, cursor) -> (
          progressed := true;
          incr transmitted;
          Mem_port.instr t.port 12;
          charge_validity t;
          match Layout.buffer_of_addr layout buf_addr with
          | None ->
              (* Corrupt, or pointing into another application's region:
                 either way the engine refuses to touch it. *)
              reject t layout;
              Buffer_queue.engine_advance t.port layout ~ep ~cursor
          | Some buf ->
              let dest = Msg_buffer.dest t.port layout ~buf in
              let dst_node = Address.node dest in
              let dst_ep = Address.endpoint dest in
              let refused reason =
                if not (Address.is_null dest) then
                  lat t (fun l -> Latency.send_refused l ~dst_node ~dst_ep);
                emit t (fun () ->
                    Event.Drop { node = t.node; ep = global_ep; reason })
              in
              (if not (destination_allowed t layout ~ep ~dest) then begin
                 t.stats.forbidden <- t.stats.forbidden + 1;
                 refused Event.Forbidden_destination;
                 bump_global t layout Layout.Engine_rejects
               end
               else begin
                 let pos, len = Msg_buffer.region layout ~buf in
                 let image = Dma.read t.dma ~pos ~len in
                 match t.transport.transmit ~dst:dest image with
                 | Ok () ->
                     t.stats.sends <- t.stats.sends + 1;
                     trace t "transmit: ep %d -> %s" ep
                       (Fmt.str "%a" Address.pp dest);
                     lat t (fun l ->
                         Latency.engine_tx l ~now:(Sim.now t.sim) ~dst_node
                           ~dst_ep);
                     emit t (fun () ->
                         Event.Engine_tx
                           { node = t.node; ep = global_ep; dst_node; dst_ep });
                     bump_global t layout Layout.Engine_sends
                 | Error `Bad_dest ->
                     t.stats.bad_dest <- t.stats.bad_dest + 1;
                     refused Event.Bad_destination
               end);
              (* Buffer recovery must not depend on delivery: mark it
                 processed either way. *)
              Msg_buffer.set_state t.port layout ~buf Msg_buffer.Complete;
              Buffer_queue.engine_advance t.port layout ~ep ~cursor)
  done;
  !progressed

let park t =
  t.stats.parks <- t.stats.parks + 1;
  trace t "park after %d idle iterations" t.idle;
  emit t (fun () -> Event.Engine_park { node = t.node; idle = t.idle });
  Sim.suspend (fun resume -> t.parked <- Some resume);
  t.parked <- None;
  trace t "wake";
  emit t (fun () -> Event.Engine_wake { node = t.node });
  t.idle <- 0

let poll_delay t =
  let base = t.config.Config.engine_poll_ns in
  let jitter = t.config.Config.engine_poll_jitter in
  if jitter = 0. then base
  else
    let span = float_of_int base *. jitter in
    let offset = Prng.float t.prng (2. *. span) -. span in
    max 0 (base + int_of_float offset)

let iteration t =
  t.stats.iterations <- t.stats.iterations + 1;
  Sim.delay (poll_delay t);
  bump_global t t.layouts.(0) Layout.Engine_iterations;
  let did_work = ref false in
  while not (Queue.is_empty t.incoming) do
    did_work := true;
    handle_incoming t (Queue.pop t.incoming)
  done;
  (* Scan every communication buffer's allocated endpoints, collecting
     send endpoints with their transport priorities; transmit in priority
     order (real-time prioritization of the basic transport), respecting
     per-endpoint bursts (capacity control). Priority is global across
     buffers, so one application cannot starve another's urgent traffic
     by local priority inflation alone — but the table is the trust
     boundary, so co-operating applications should agree on a policy. *)
  let sends = ref [] in
  Array.iteri
    (fun li layout ->
      for ep = 0 to t.config.Config.endpoints - 1 do
        let kind_word =
          Mem_port.load t.port (Layout.ep_field layout ~ep Layout.Ep_type)
        in
        if kind_word <> Endpoint_kind.free_word then begin
          (* Record scan progress for this endpoint (engine bookkeeping). *)
          Mem_port.store t.port
            (Layout.ep_field layout ~ep Layout.Scan_stamp)
            (t.stats.iterations land 0x3FFFFFFF);
          if kind_word = Endpoint_kind.to_word Endpoint_kind.Send then begin
            let priority =
              Mem_port.load t.port (Layout.ep_field layout ~ep Layout.Priority)
            in
            let burst =
              Mem_port.load t.port (Layout.ep_field layout ~ep Layout.Burst)
            in
            sends := (priority, (li * t.config.Config.endpoints) + ep, burst) :: !sends
          end
        end
      done)
    t.layouts;
  let ordered =
    List.sort (fun (pa, ea, _) (pb, eb, _) ->
        match Int.compare pb pa with 0 -> Int.compare ea eb | c -> c)
      !sends
  in
  List.iter
    (fun (_, global_ep, burst) ->
      match resolve t global_ep with
      | Some (layout, ep) ->
          if process_sends t layout ~global_ep ~ep ~burst then
            did_work := true
      | None -> ())
    ordered;
  !did_work

let start t =
  if t.started then invalid_arg "Msg_engine.start: already started";
  t.started <- true;
  t.running <- true;
  let name = Printf.sprintf "msg-engine-%d" t.node in
  Sim.spawn ~name t.sim (fun () ->
      while t.running do
        if iteration t then t.idle <- 0
        else begin
          t.idle <- t.idle + 1;
          if t.running && t.idle >= t.config.Config.engine_park_after then
            park t
        end
      done)
