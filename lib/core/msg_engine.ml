module Sim = Flipc_sim.Engine
module Prng = Flipc_sim.Prng
module Mem_port = Flipc_memsim.Mem_port
module Dma = Flipc_net.Dma
module Obs = Flipc_obs.Obs
module Event = Flipc_obs.Event
module Latency = Flipc_obs.Latency

type transport = {
  tname : string;
  transmit : dst:Address.t -> Bytes.t -> (unit, [ `Bad_dest ]) result;
}

type stats = {
  mutable iterations : int;
  mutable sends : int;
  mutable recvs : int;
  mutable drops : int;
  mutable rejects : int;
  mutable unroutable : int;
  mutable bad_dest : int;
  mutable forbidden : int;
  mutable parks : int;
  mutable doorbell_hits : int;
  mutable sched_rebuilds : int;
  mutable rx_truncations : int;
  mutable idle_scans_avoided : int;
  mutable corrupt_frames : int;
}

type t = {
  sim : Sim.t;
  node : int;
  shard : int;  (* this engine's shard index in [0, shard_count) *)
  shard_count : int;
  layouts : Layout.t array;  (* one communication buffer per element *)
  config : Config.t;
  port : Mem_port.t;
  dma : Dma.t;
  transport : transport;
  incoming : Bytes.t Queue.t;
  mutable running : bool;
  mutable started : bool;
  mutable parked : (unit -> unit) option;
  mutable poked : bool;
  mutable idle : int;
  mutable rx_chain : int;
      (* deposits so far in the current incoming drain; every
         [engine_tx_batch]'th reprograms the DMA descriptor chain, the
         rest ride it (see [handle_verified]) *)
  rx_release : int array;
      (* per-global-endpoint cached receive-ring [Release] cursor, valid
         while [rx_release_gen] matches [rx_gen] — one coherence miss per
         endpoint per incoming drain instead of one per deposit *)
  rx_release_gen : int array;
  mutable rx_gen : int;
  rx_recv_accum : int array;
      (* per-comm-buffer deposit count accumulated over one drain; a
         batching engine flushes each as a single [Engine_recvs] bump *)
  prng : Prng.t;
  stats : stats;
  (* Doorbell scheduler state (engine-private; see DESIGN.md §11).
     [shadow] holds the last observed Send_pending value per node-global
     endpoint; [pending] marks doorbells observed but not yet drained.
     The schedule is three parallel arrays holding the allocated send
     endpoints in (priority desc, endpoint asc) order, rebuilt only when
     a communication buffer's G_schedule_epoch differs from
     [cached_epoch]. All are preallocated: the steady-state iteration
     allocates nothing. *)
  shadow : int array;
  pending : bool array;
  hot : int array;  (* eager-visit countdown per endpoint; see iteration_doorbell *)
  sched_ep : int array;
  sched_prio : int array;
  sched_burst : int array;
  mutable sched_len : int;
  cached_epoch : int array;  (* one per communication buffer *)
  shadow_seq : int array;
      (* last observed G_doorbell_seq per communication buffer; the
         per-endpoint shadow scan runs only when one changed *)
  mutable wakeup_hook : (ep:int -> unit) option;
  mutable trace : Flipc_sim.Trace.t option;
  mutable obs : Obs.t option;
}

let create ?(shard = (0, 1)) ~sim ~node ~comms ~port ~dma ~transport () =
  let shard_index, shard_count = shard in
  if shard_count < 1 || shard_index < 0 || shard_index >= shard_count then
    invalid_arg "Msg_engine.create: bad shard";
  (match comms with
  | [] -> invalid_arg "Msg_engine.create: need at least one comm buffer"
  | first :: rest ->
      let c0 = Comm_buffer.config first in
      List.iter
        (fun c ->
          if Comm_buffer.config c <> c0 then
            invalid_arg
              "Msg_engine.create: all comm buffers must share one config")
        rest);
  let config = Comm_buffer.config (List.hd comms) in
  let layouts = Array.of_list (List.map Comm_buffer.layout comms) in
  let total_eps = Array.length layouts * config.Config.endpoints in
  {
    sim;
    node;
    shard = shard_index;
    shard_count;
    layouts;
    config;
    port;
    dma;
    transport;
    incoming = Queue.create ();
    running = false;
    started = false;
    parked = None;
    poked = false;
    idle = 0;
    rx_chain = 0;
    rx_release = Array.make total_eps (-1);
    rx_release_gen = Array.make total_eps (-1);
    rx_gen = 0;
    rx_recv_accum = Array.make (Array.length layouts) 0;
    (* Shard 0 keeps the historical stream so single-shard timelines are
       bit-identical with pre-sharding builds; higher shards decorrelate
       their poll jitter. *)
    prng = Prng.create ~seed:(0x5EED + node + (shard_index * 0x1003F));
    trace = None;
    obs = None;
    stats =
      {
        iterations = 0;
        sends = 0;
        recvs = 0;
        drops = 0;
        rejects = 0;
        unroutable = 0;
        bad_dest = 0;
        forbidden = 0;
        parks = 0;
        doorbell_hits = 0;
        sched_rebuilds = 0;
        rx_truncations = 0;
        idle_scans_avoided = 0;
        corrupt_frames = 0;
      };
    shadow = Array.make total_eps 0;
    pending = Array.make total_eps false;
    hot = Array.make total_eps 0;
    sched_ep = Array.make total_eps 0;
    sched_prio = Array.make total_eps 0;
    sched_burst = Array.make total_eps 0;
    sched_len = 0;
    cached_epoch = Array.make (Array.length layouts) 0;
    shadow_seq = Array.make (Array.length layouts) 0;
    wakeup_hook = None;
  }

let node t = t.node
let shard t = t.shard
let shard_count t = t.shard_count
let stats t = t.stats
let set_wakeup_hook t f = t.wakeup_hook <- Some f
let set_trace t trace = t.trace <- Some trace

(* Which shard of a [count]-way partition owns node-global endpoint [g].
   The machine's delivery router and the application library's poke
   target use this same function, which is what makes per-shard
   ownership airtight: nothing else ever maps an endpoint to an
   engine. *)
let owner_shard ~count g = if count = 1 then 0 else g mod count

(* Probe names: the single-shard machine keeps the historical
   [node<i>.engine.*] names; sharded engines key theirs by zero-padded
   shard id ([node<i>.engine.s03.*]) so the registry's name-sorted
   snapshot enumerates shards in index order — stable across runs and
   shard counts. *)
let probe_prefix t =
  if t.shard_count = 1 then Printf.sprintf "node%d.engine" t.node
  else Printf.sprintf "node%d.engine.s%02d" t.node t.shard

let set_obs t obs =
  t.obs <- Some obs;
  let m = Obs.metrics obs in
  let prefix = probe_prefix t in
  let probe name f =
    Flipc_obs.Metrics.probe m
      (Printf.sprintf "%s.%s" prefix name)
      (fun () -> float_of_int (f ()))
  in
  probe "iterations" (fun () -> t.stats.iterations);
  probe "sends" (fun () -> t.stats.sends);
  probe "recvs" (fun () -> t.stats.recvs);
  probe "drops" (fun () -> t.stats.drops);
  probe "rejects" (fun () -> t.stats.rejects);
  probe "unroutable" (fun () -> t.stats.unroutable);
  probe "bad_dest" (fun () -> t.stats.bad_dest);
  probe "forbidden" (fun () -> t.stats.forbidden);
  probe "parks" (fun () -> t.stats.parks);
  probe "doorbell_hits" (fun () -> t.stats.doorbell_hits);
  probe "sched_rebuilds" (fun () -> t.stats.sched_rebuilds);
  probe "rx_truncations" (fun () -> t.stats.rx_truncations);
  probe "idle_scans_avoided" (fun () -> t.stats.idle_scans_avoided);
  probe "corrupt_frames" (fun () -> t.stats.corrupt_frames)

let obs t = t.obs

(* Typed trace event; one branch when tracing is off. [ev] is a thunk so
   disabled tracing never allocates the event. *)
let emit t ev =
  match t.obs with
  | Some o when Obs.tracing o -> Obs.event o (ev ())
  | _ -> ()

(* Latency stamping is always on when an observability bundle is
   attached: it costs host time only, never virtual time. *)
let lat t f = match t.obs with Some o -> f (Obs.latency o) | None -> ()

(* With no trace attached, [Format.ikfprintf] consumes the arguments
   without interpreting the format string: the disabled path formats
   nothing (unlike [Fmt.kstr], which builds and then discards the
   string). *)
let trace t fmt =
  match t.trace with
  | Some tr ->
      Flipc_sim.Trace.recordf tr ~now:(Sim.now t.sim)
        ~tag:
          (if t.shard_count = 1 then Printf.sprintf "engine-%d" t.node
           else Printf.sprintf "engine-%d.%d" t.node t.shard)
        fmt
  | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

(* [poked] stays set across an iteration: the engine only parks after a
   full iteration during which nobody poked it, closing the race where a
   poke lands mid-iteration (a no-op on a running engine) just before
   the park decision. *)
let poke t =
  t.poked <- true;
  match t.parked with
  | Some resume ->
      t.parked <- None;
      resume ()
  | None -> ()

let deliver t image =
  (* Wire-arrival stamp: this is the instant the image reaches the
     destination engine, before the engine loop gets around to handling
     it. Handling order is queue (FIFO) order, which keeps the latency
     pairing exact. *)
  let dest = Msg_buffer.dest_of_image image in
  if not (Address.is_null dest) then begin
    let ep = Address.endpoint dest in
    lat t (fun l -> Latency.wire_rx l ~now:(Sim.now t.sim) ~node:t.node ~ep);
    emit t (fun () ->
        Event.Wire_rx
          { node = t.node; ep; mid = Msg_buffer.msg_id_of_image image })
  end;
  Queue.push image t.incoming;
  poke t

let stop t =
  t.running <- false;
  poke t

let running t = t.running

(* Node-global endpoint index -> (communication buffer, local index). *)
let resolve t global_ep =
  let eps = t.config.Config.endpoints in
  let idx = global_ep / eps in
  if global_ep < 0 || idx >= Array.length t.layouts then None
  else Some (t.layouts.(idx), global_ep mod eps)

let bump_global t layout g =
  let addr = Layout.global_addr layout g in
  Mem_port.store t.port addr (Mem_port.peek t.port addr + 1)

(* Batched counter flush: the globals line is shared with the
   application's own counters, so every engine bump is a coherence miss
   on a busy node. A batching engine accumulates deltas host-side and
   flushes once per drain. *)
let bump_global_n t layout g n =
  if n > 0 then
    let addr = Layout.global_addr layout g in
    Mem_port.store t.port addr (Mem_port.peek t.port addr + n)

let reject t layout =
  t.stats.rejects <- t.stats.rejects + 1;
  bump_global t layout Layout.Engine_rejects

(* A message with a null or unresolvable destination belongs to no
   communication buffer; charging it to buffer 0's globals would falsify
   that buffer's statistics, so it is counted at node level only. *)
let reject_unroutable t =
  t.stats.unroutable <- t.stats.unroutable + 1

let charge_validity t =
  if t.config.Config.validity_checks then
    Mem_port.instr t.port t.config.Config.validity_check_instrs

(* An arriving message: demultiplex to its receive endpoint and deposit it
   in the next posted buffer, or discard it and count the drop. The
   receiving node is thereby always prepared to accept from the
   interconnect, which is what makes the optimistic protocol deadlock-free
   on a reliable fabric. *)
let handle_verified t image =
  let dest = Msg_buffer.dest_of_image image in
  charge_validity t;
  let discard reason global_ep =
    if global_ep >= 0 then
      lat t (fun l -> Latency.discarded l ~node:t.node ~ep:global_ep);
    emit t (fun () ->
        Event.Drop
          {
            node = t.node;
            ep = global_ep;
            mid = Msg_buffer.msg_id_of_image image;
            reason;
          })
  in
  if Address.is_null dest then begin
    discard Event.Bad_destination (-1);
    reject_unroutable t
  end
  else
    let global_ep = Address.endpoint dest in
    match resolve t global_ep with
    | None ->
        discard Event.Bad_destination global_ep;
        reject_unroutable t
    | Some (layout, ep) -> (
        let kind_word =
          Mem_port.load t.port (Layout.ep_field layout ~ep Layout.Ep_type)
        in
        match Endpoint_kind.of_word kind_word with
        | Some Endpoint_kind.Recv -> (
            (* Batched cursor reads on the deposit path: within one
               incoming drain the app-owned [Release] of each receive
               ring is fetched once and cached ([rx_gen] stamps the
               drain), refreshed only when the cached view looks empty —
               so an apparent ring-full is re-checked before a message is
               dropped, and the cached path drops exactly when
               [engine_peek] would. Unbatched knob keeps the per-deposit
               peek, the ablation baseline. *)
            let peek () =
              if t.config.Config.engine_tx_batch = 1 then
                Buffer_queue.engine_peek t.port layout ~ep
              else begin
                let fresh () =
                  let r = Buffer_queue.engine_fetch_release t.port layout ~ep in
                  t.rx_release.(global_ep) <- r;
                  t.rx_release_gen.(global_ep) <- t.rx_gen;
                  r
                in
                let release =
                  if t.rx_release_gen.(global_ep) = t.rx_gen then
                    t.rx_release.(global_ep)
                  else fresh ()
                in
                match Buffer_queue.engine_peek_at t.port layout ~ep ~release with
                | Some _ as hit -> hit
                | None ->
                    Buffer_queue.engine_peek_at t.port layout ~ep
                      ~release:(fresh ())
              end
            in
            match peek () with
            | None ->
                Drop_counter.engine_increment t.port layout ~ep;
                t.stats.drops <- t.stats.drops + 1;
                trace t "discard: no posted buffer on ep %d" global_ep;
                discard Event.No_posted_buffer global_ep;
                bump_global t layout Layout.Engine_drops
            | Some (buf_addr, cursor) -> (
                match Layout.buffer_of_addr layout buf_addr with
                | None ->
                    (* The application queued a corrupt pointer (or one
                       aimed at another application's region). Skip the
                       slot so the queue cannot wedge the engine, and
                       discard the message. *)
                    discard Event.Corrupt_slot global_ep;
                    reject t layout;
                    Buffer_queue.engine_advance t.port layout ~ep ~cursor
                | Some buf ->
                    (* Deposit-side descriptor-chain reuse, mirroring the
                       transmit batch: within one incoming drain, only
                       every [engine_tx_batch]'th deposit reprograms the
                       DMA channel. *)
                    let first_of_batch =
                      t.rx_chain mod t.config.Config.engine_tx_batch = 0
                    in
                    t.rx_chain <- t.rx_chain + 1;
                    Dma.write ~setup:first_of_batch t.dma ~pos:buf_addr image;
                    Msg_buffer.set_state t.port layout ~buf Msg_buffer.Complete;
                    Buffer_queue.engine_advance t.port layout ~ep ~cursor;
                    t.stats.recvs <- t.stats.recvs + 1;
                    trace t "deposit: ep %d buffer %d" global_ep buf;
                    lat t (fun l ->
                        Latency.deposited l ~node:t.node ~ep:global_ep);
                    emit t (fun () ->
                        Event.Deposit
                          {
                            node = t.node;
                            ep = global_ep;
                            mid = Msg_buffer.msg_id_of_image image;
                          });
                    if t.config.Config.engine_tx_batch = 1 then
                      bump_global t layout Layout.Engine_recvs
                    else
                      t.rx_recv_accum.(global_ep / t.config.Config.endpoints) <-
                        t.rx_recv_accum.(global_ep / t.config.Config.endpoints)
                        + 1;
                    let sem =
                      Mem_port.load t.port
                        (Layout.ep_field layout ~ep Layout.Sem_flag)
                    in
                    if sem = 1 then begin
                      Mem_port.instr t.port 8;
                      match t.wakeup_hook with
                      | Some hook -> hook ~ep:global_ep
                      | None -> ()
                    end))
        | Some Endpoint_kind.Send | None ->
            discard Event.Bad_destination global_ep;
            reject t layout)

let handle_incoming t ~first image =
  (* Demultiplex + protocol-framework dispatch on the coprocessor. The
     first frame of each [engine_tx_batch] run in a drain pays the full
     dispatch; followers reuse the hot demux state — the receive-side
     mirror of the transmit dispatch discount. *)
  Mem_port.instr t.port (if first then 15 else 4);
  (* Checksum first, before the destination word is even decoded: a
     damaged frame's every bit — address, state, payload — is suspect, so
     it must not reach demultiplexing, where a flipped destination bit
     would deliver it to the wrong endpoint. The sender's reliability
     layer sees the discard as a loss and retransmits. *)
  if
    t.config.Config.frame_checksum
    && not
         (Mem_port.instr t.port (Bytes.length image / 4);
          Msg_buffer.image_checksum_ok image)
  then begin
    t.stats.corrupt_frames <- t.stats.corrupt_frames + 1;
    trace t "discard: frame checksum mismatch";
    (* mid 0, not the image's: a checksum-failed frame's id bits are as
       suspect as the rest, and a corrupted id would attach this discard
       to an unrelated span. The original send's span keeps its
       [Fault_corrupt] marker, which Causal classifies as a wire-stage
       corruption stall. *)
    emit t (fun () ->
        Event.Drop
          { node = t.node; ep = -1; mid = 0; reason = Event.Corrupt_frame })
  end
  else handle_verified t image

(* Deposit incoming messages, at most [engine_rx_burst] per iteration: the
   loop is non-preemptible, so one flooded node must not monopolize an
   iteration and starve the transmit path. A truncated drain reports work
   remaining, which keeps the engine polling (and never parking) until the
   backlog clears. *)
let drain_incoming t =
  let budget = t.config.Config.engine_rx_burst in
  let tx_batch = t.config.Config.engine_tx_batch in
  t.rx_chain <- 0;
  t.rx_gen <- t.rx_gen + 1;
  let handled = ref 0 in
  while !handled < budget && not (Queue.is_empty t.incoming) do
    let first = tx_batch = 1 || !handled mod tx_batch = 0 in
    incr handled;
    handle_incoming t ~first (Queue.pop t.incoming)
  done;
  if tx_batch > 1 then
    Array.iteri
      (fun li n ->
        if n > 0 then begin
          t.rx_recv_accum.(li) <- 0;
          bump_global_n t t.layouts.(li) Layout.Engine_recvs n
        end)
      t.rx_recv_accum;
  if not (Queue.is_empty t.incoming) then begin
    t.stats.rx_truncations <- t.stats.rx_truncations + 1;
    true
  end
  else !handled > 0

(* Protection check: an endpoint may be restricted to one destination
   node ("restrict where messages can be sent"). 0 means unrestricted. *)
let destination_allowed t layout ~ep ~dest =
  let allowed =
    Mem_port.load t.port (Layout.ep_field layout ~ep Layout.Allowed_node)
  in
  allowed = 0 || (not (Address.is_null dest) && Address.node dest = allowed - 1)

(* Outcome of one endpoint drain. Constant constructors: the hot path
   allocates nothing. *)
type drain_result =
  | Empty  (** ring was already empty *)
  | Drained  (** transmitted work and emptied the ring *)
  | Truncated  (** hit the burst cap; the ring may hold more *)

(* Transmit messages the application has released on one send endpoint,
   at most [burst] per call; with no configured burst the cap is the ring
   capacity. An uncapped drain loop would let one saturating producer
   starve every other endpoint and the receive path: the producer can
   refill the ring as fast as the engine empties it, so the engine's
   non-preemptible loop must bound its work per endpoint per iteration. *)
let process_sends t layout ~global_ep ~ep ~burst =
  let limit =
    if burst > 0 then burst else t.config.Config.queue_capacity - 1
  in
  let tx_batch = t.config.Config.engine_tx_batch in
  let progressed = ref false in
  let transmitted = ref 0 in
  let continue = ref true in
  let truncated = ref false in
  (* Batched cursor reads: fetch the app-owned [Release] once per drain
     and peek against the cached value, refreshing only on apparent-empty
     — one coherence miss per drain instead of one per message. The
     unbatched knob setting keeps the per-message [engine_peek], the
     ablation baseline. *)
  let release = ref (-1) in
  let ok_sends = ref 0 in
  if tx_batch > 1 then
    release := Buffer_queue.engine_fetch_release t.port layout ~ep;
  let peek () =
    if tx_batch = 1 then Buffer_queue.engine_peek t.port layout ~ep
    else
      match Buffer_queue.engine_peek_at t.port layout ~ep ~release:!release with
      | Some _ as hit -> hit
      | None ->
          release := Buffer_queue.engine_fetch_release t.port layout ~ep;
          Buffer_queue.engine_peek_at t.port layout ~ep ~release:!release
  in
  while !continue do
    if !transmitted >= limit then begin
      truncated := true;
      continue := false
    end
    else
      match peek () with
      | None -> continue := false
      | Some (buf_addr, cursor) -> (
          progressed := true;
          incr transmitted;
          (* Batched transmit: the first message of each [engine_tx_batch]
             run pays full dispatch (12 instrs) and programs the DMA
             descriptor chain; followers in the same run reuse the chain —
             reduced dispatch, no [setup_ns]. A batch never outlives this
             drain, so correctness is untouched: every message still moves
             through the identical peek/DMA/transmit/advance sequence. *)
          let first_of_batch = (!transmitted - 1) mod tx_batch = 0 in
          Mem_port.instr t.port (if first_of_batch then 12 else 3);
          charge_validity t;
          match Layout.buffer_of_addr layout buf_addr with
          | None ->
              (* Corrupt, or pointing into another application's region:
                 either way the engine refuses to touch it. *)
              reject t layout;
              Buffer_queue.engine_advance t.port layout ~ep ~cursor
          | Some buf ->
              let dest = Msg_buffer.dest t.port layout ~buf in
              let dst_node = Address.node dest in
              let dst_ep = Address.endpoint dest in
              let refused reason =
                if not (Address.is_null dest) then
                  lat t (fun l -> Latency.send_refused l ~dst_node ~dst_ep);
                emit t (fun () ->
                    Event.Drop
                      {
                        node = t.node;
                        ep = global_ep;
                        mid = Msg_buffer.msg_id t.port layout ~buf;
                        reason;
                      })
              in
              (if not (destination_allowed t layout ~ep ~dest) then begin
                 t.stats.forbidden <- t.stats.forbidden + 1;
                 refused Event.Forbidden_destination;
                 bump_global t layout Layout.Engine_rejects
               end
               else begin
                 let pos, len = Msg_buffer.region layout ~buf in
                 let image = Dma.read ~setup:first_of_batch t.dma ~pos ~len in
                 match t.transport.transmit ~dst:dest image with
                 | Ok () ->
                     t.stats.sends <- t.stats.sends + 1;
                     trace t "transmit: ep %d -> %a" ep Address.pp dest;
                     lat t (fun l ->
                         Latency.engine_tx l ~now:(Sim.now t.sim) ~dst_node
                           ~dst_ep);
                     emit t (fun () ->
                         Event.Engine_tx
                           {
                             node = t.node;
                             ep = global_ep;
                             dst_node;
                             dst_ep;
                             mid = Msg_buffer.msg_id_of_image image;
                           });
                     if tx_batch = 1 then
                       bump_global t layout Layout.Engine_sends
                     else incr ok_sends
                 | Error `Bad_dest ->
                     t.stats.bad_dest <- t.stats.bad_dest + 1;
                     refused Event.Bad_destination
               end);
              (* Buffer recovery must not depend on delivery: mark it
                 processed either way. *)
              Msg_buffer.set_state t.port layout ~buf Msg_buffer.Complete;
              Buffer_queue.engine_advance t.port layout ~ep ~cursor)
  done;
  (* Batched counter flush, mirroring the deposit path: one globals-line
     store per drain instead of one per transmitted message. *)
  if tx_batch > 1 then bump_global_n t layout Layout.Engine_sends !ok_sends;
  if !truncated then Truncated else if !progressed then Drained else Empty

let park t =
  t.stats.parks <- t.stats.parks + 1;
  trace t "park after %d idle iterations" t.idle;
  emit t (fun () -> Event.Engine_park { node = t.node; idle = t.idle });
  Sim.suspend (fun resume -> t.parked <- Some resume);
  t.parked <- None;
  trace t "wake";
  emit t (fun () -> Event.Engine_wake { node = t.node });
  t.idle <- 0

let poll_delay t =
  let base = t.config.Config.engine_poll_ns in
  let jitter = t.config.Config.engine_poll_jitter in
  if jitter = 0. then base
  else
    let span = float_of_int base *. jitter in
    let offset = Prng.float t.prng (2. *. span) -. span in
    max 0 (base + int_of_float offset)

let scan_stamp t layout ~ep =
  Mem_port.store t.port
    (Layout.ep_field layout ~ep Layout.Scan_stamp)
    (t.stats.iterations land 0x3FFFFFFF)

(* Rebuild the cached priority schedule from the endpoint tables — the
   only full scan the doorbell engine ever does, and it runs only when an
   epoch word changed. The cached epoch is captured {e before} this scan
   (in [check_epochs]): a table change racing with the rebuild bumps the
   epoch again, so the next iteration rescans. Insertion into the
   preallocated parallel arrays keeps (priority desc, endpoint asc) order
   without a sort; allocation order is ascending, so the insertion scan
   only has to move strictly-lower-priority entries. *)
let rebuild_schedule t =
  t.stats.sched_rebuilds <- t.stats.sched_rebuilds + 1;
  t.sched_len <- 0;
  let eps = t.config.Config.endpoints in
  for li = 0 to Array.length t.layouts - 1 do
    let layout = t.layouts.(li) in
    for ep = 0 to eps - 1 do
      (* Shard ownership gate: a sharded engine schedules (and stamps)
         only its own residue class, so every engine-written endpoint
         word keeps exactly one writer. Unowned entries cost this rebuild
         nothing — not even the [Ep_type] load. *)
      if owner_shard ~count:t.shard_count ((li * eps) + ep) = t.shard then begin
      let kind_word =
        Mem_port.load t.port (Layout.ep_field layout ~ep Layout.Ep_type)
      in
      if kind_word <> Endpoint_kind.free_word then begin
        scan_stamp t layout ~ep;
        if kind_word = Endpoint_kind.to_word Endpoint_kind.Send then begin
          let g = (li * eps) + ep in
          let priority =
            Mem_port.load t.port (Layout.ep_field layout ~ep Layout.Priority)
          in
          let burst =
            Mem_port.load t.port (Layout.ep_field layout ~ep Layout.Burst)
          in
          (* Re-sync the shadow from the live doorbell and force one
             visit. The shadow may be stale across a free/reallocate of
             this slot (the fresh doorbell could coincide with the old
             shadow value and be missed); one possibly-empty visit per
             rebuild buys an unconditional invariant: entering the
             schedule implies being visited. *)
          t.shadow.(g) <-
            Mem_port.load t.port
              (Layout.ep_field layout ~ep Layout.Send_pending);
          t.pending.(g) <- true;
          let i = ref t.sched_len in
          while !i > 0 && t.sched_prio.(!i - 1) < priority do
            t.sched_ep.(!i) <- t.sched_ep.(!i - 1);
            t.sched_prio.(!i) <- t.sched_prio.(!i - 1);
            t.sched_burst.(!i) <- t.sched_burst.(!i - 1);
            decr i
          done;
          t.sched_ep.(!i) <- g;
          t.sched_prio.(!i) <- priority;
          t.sched_burst.(!i) <- burst;
          t.sched_len <- t.sched_len + 1
        end
      end
      end
    done
  done

(* Compare each scheduled endpoint's doorbell with the engine's shadow;
   a difference means the application released onto that queue since the
   engine last looked. The shadow is updated here — before the drain — so
   a release that lands mid-drain (bumping the doorbell again) re-raises
   [pending] on the next check rather than being absorbed silently. *)
(* Doorbell aggregation: the application bumps one summary word per
   communication buffer after every per-endpoint ring, so a check costs
   one load per buffer — a cache hit while nothing rang — and the
   [sched_len]-wide shadow scan runs only behind a changed summary. That
   is what keeps doorbell idle load traffic flat as the endpoint table
   grows (the engine_scan bench gates on it). The summary is captured
   {e before} the per-endpoint scan: a ring racing the scan leaves the
   summary ahead of the engine's copy, forcing a rescan next iteration,
   so the release-then-ring wakeup ordering stays lossless. Sharded
   engines share the summary read-only; a ring owned by another shard
   causes a scan that finds nothing, never a missed one. *)
let check_doorbells t =
  let eps = t.config.Config.endpoints in
  let changed = ref false in
  for li = 0 to Array.length t.layouts - 1 do
    let s =
      Mem_port.load t.port
        (Layout.global_addr t.layouts.(li) Layout.G_doorbell_seq)
    in
    if s <> t.shadow_seq.(li) then begin
      t.shadow_seq.(li) <- s;
      changed := true
    end
  done;
  if !changed then
    for i = 0 to t.sched_len - 1 do
      let g = t.sched_ep.(i) in
      let layout = t.layouts.(g / eps) in
      let ep = g mod eps in
      let v =
        Mem_port.load t.port (Layout.ep_field layout ~ep Layout.Send_pending)
      in
      if v <> t.shadow.(g) then begin
        t.shadow.(g) <- v;
        t.pending.(g) <- true;
        t.hot.(g) <- t.config.Config.engine_park_after;
        t.stats.doorbell_hits <- t.stats.doorbell_hits + 1;
        emit t (fun () -> Event.Doorbell { node = t.node; ep = g })
      end
    done

(* One check of all communication buffers' schedule epochs; returns true
   (and updates the cached copies) when any differs. The cached value is
   the one read {e before} the rebuild's table scan — see
   [rebuild_schedule]. *)
let check_epochs t =
  let stale = ref false in
  for li = 0 to Array.length t.layouts - 1 do
    let e =
      Mem_port.load t.port
        (Layout.global_addr t.layouts.(li) Layout.G_schedule_epoch)
    in
    if e <> t.cached_epoch.(li) then begin
      t.cached_epoch.(li) <- e;
      stale := true
    end
  done;
  !stale

(* Work-proportional iteration: epoch load per buffer + doorbell load per
   allocated send endpoint, then visits only pending endpoints. An idle
   iteration touches no endpoint table entry at all — the full
   buffers x endpoints scan below ([iteration_full_scan]) is what this
   avoids. *)
let iteration_doorbell t =
  let did_work = ref (drain_incoming t) in
  let rebuilt = check_epochs t in
  if rebuilt then rebuild_schedule t;
  let eps = t.config.Config.endpoints in
  let visited = ref 0 in
  (* A second check+visit pass runs when the first drained work: a
     release landing while the engine drains a queue rings its doorbell
     after the queue store, and the second check picks it up in the same
     iteration. The pass count is bounded so a saturating producer
     cannot pin the engine inside one iteration. *)
  let pass = ref 0 in
  let again = ref true in
  while !again && !pass < 2 do
    incr pass;
    again := false;
    check_doorbells t;
    for i = 0 to t.sched_len - 1 do
      let g = t.sched_ep.(i) in
      (* Visit when the doorbell fired, and keep visiting for a while
         after it last fired ([hot] countdown): an eager visit peeks the
         ring cursors directly, so a release on a recently-active
         endpoint is caught by loads already in flight rather than
         waiting out a full poll cycle for the next doorbell check — the
         wide-net discovery the old always-scanning engine got for free.
         Endpoints with no recent traffic decay back to the single
         doorbell load, keeping idle cost proportional to {e active}
         endpoints, which is the point of the scheduler. *)
      if t.pending.(g) || t.hot.(g) > 0 then begin
        incr visited;
        if !pass = 1 && t.hot.(g) > 0 then t.hot.(g) <- t.hot.(g) - 1;
        let layout = t.layouts.(g / eps) in
        let ep = g mod eps in
        scan_stamp t layout ~ep;
        match
          process_sends t layout ~global_ep:g ~ep ~burst:t.sched_burst.(i)
        with
        | Empty -> t.pending.(g) <- false
        | Drained ->
            t.pending.(g) <- false;
            t.hot.(g) <- t.config.Config.engine_park_after;
            did_work := true;
            again := true
        | Truncated ->
            (* Burst cap hit: leave the doorbell pending so the endpoint
               is revisited next iteration even if no new release rings
               it. *)
            t.hot.(g) <- t.config.Config.engine_park_after;
            did_work := true
      end
    done
  done;
  if (not rebuilt) && !visited = 0 then
    t.stats.idle_scans_avoided <- t.stats.idle_scans_avoided + 1;
  !did_work

(* The original scan-everything iteration, kept verbatim as the
   [Full_scan] ablation: per-iteration cost is proportional to configured
   endpoints (plus a list build and sort), which the engine_scan bench
   contrasts with the doorbell path. *)
let iteration_full_scan t =
  let did_work = ref (drain_incoming t) in
  (* Scan every communication buffer's allocated endpoints, collecting
     send endpoints with their transport priorities; transmit in priority
     order (real-time prioritization of the basic transport), respecting
     per-endpoint bursts (capacity control). Priority is global across
     buffers, so one application cannot starve another's urgent traffic
     by local priority inflation alone — but the table is the trust
     boundary, so co-operating applications should agree on a policy. *)
  let sends = ref [] in
  Array.iteri
    (fun li layout ->
      for ep = 0 to t.config.Config.endpoints - 1 do
        let kind_word =
          Mem_port.load t.port (Layout.ep_field layout ~ep Layout.Ep_type)
        in
        if kind_word <> Endpoint_kind.free_word then begin
          (* Record scan progress for this endpoint (engine bookkeeping). *)
          scan_stamp t layout ~ep;
          if kind_word = Endpoint_kind.to_word Endpoint_kind.Send then begin
            let priority =
              Mem_port.load t.port (Layout.ep_field layout ~ep Layout.Priority)
            in
            let burst =
              Mem_port.load t.port (Layout.ep_field layout ~ep Layout.Burst)
            in
            sends :=
              (priority, (li * t.config.Config.endpoints) + ep, burst)
              :: !sends
          end
        end
      done)
    t.layouts;
  let ordered =
    List.sort
      (fun (pa, ea, _) (pb, eb, _) ->
        match Int.compare pb pa with 0 -> Int.compare ea eb | c -> c)
      !sends
  in
  List.iter
    (fun (_, global_ep, burst) ->
      match resolve t global_ep with
      | Some (layout, ep) -> (
          match process_sends t layout ~global_ep ~ep ~burst with
          | Empty -> ()
          | Drained | Truncated -> did_work := true)
      | None -> ())
    ordered;
  !did_work

let iteration t =
  t.stats.iterations <- t.stats.iterations + 1;
  Sim.delay (poll_delay t);
  bump_global t t.layouts.(0) Layout.Engine_iterations;
  match t.config.Config.sched_mode with
  | Config.Doorbell -> iteration_doorbell t
  | Config.Full_scan -> iteration_full_scan t

(* Untimed pre-park re-check ([Mem_port.peek] only — no suspension
   points, so the whole check plus [Sim.suspend] is one atomic step of
   the cooperative simulation): is there really nothing to do? In
   doorbell mode this re-reads every scheduled doorbell, establishing the
   no-lost-wakeup invariant the property test exercises: a doorbell rung
   at any point before the park decision is seen here, and one rung after
   it finds the engine parked and [poke]s it awake. *)
let quiescent t =
  Queue.is_empty t.incoming
  &&
  match t.config.Config.sched_mode with
  | Config.Full_scan -> true
  | Config.Doorbell ->
      let eps = t.config.Config.endpoints in
      let quiet = ref true in
      for i = 0 to t.sched_len - 1 do
        let g = t.sched_ep.(i) in
        if t.pending.(g) then quiet := false
        else
          let layout = t.layouts.(g / eps) in
          let ep = g mod eps in
          if
            Mem_port.peek t.port
              (Layout.ep_field layout ~ep Layout.Send_pending)
            <> t.shadow.(g)
          then quiet := false
      done;
      !quiet

let start t =
  if t.started then invalid_arg "Msg_engine.start: already started";
  t.started <- true;
  t.running <- true;
  let name =
    if t.shard_count = 1 then Printf.sprintf "msg-engine-%d" t.node
    else Printf.sprintf "msg-engine-%d.s%d" t.node t.shard
  in
  Sim.spawn ~name t.sim (fun () ->
      while t.running do
        t.poked <- false;
        if iteration t then t.idle <- 0
        else begin
          t.idle <- t.idle + 1;
          (* Park only after an entire iteration during which no poke
             arrived and the final untimed re-check finds no work: no
             release can fall between the check and the suspension. *)
          if
            t.running
            && t.idle >= t.config.Config.engine_park_after
            && (not t.poked) && quiescent t
          then park t
        end
      done)
