(** Message buffers inside the communication buffer.

    Every buffer is [Config.message_bytes] long and 32-byte aligned; FLIPC
    internalizes all buffers so applications never face alignment rules.
    The first 8 bytes are FLIPC's: word 0 holds the destination address
    (written by the application library on send; carried across the wire),
    word 1 holds the processing state. The remaining bytes are application
    payload.

    The state word is written by whichever side currently owns the buffer
    (the queue cursors serialize ownership), never concurrently:
    the application resets it to [idle] when queueing, the engine sets
    [complete] when it has sent from or received into the buffer.

    {b Causal message ids.} Bits 2.. of the state word carry a 28-bit
    process-unique message id, stamped by {!Api} in the same store that
    resets the state on send — the id therefore travels inside the wire
    image at zero extra memory-system cost and survives into the
    receiver's buffer, where delivery events read it back. Id 0 means
    "unstamped". *)

module Mem_port = Flipc_memsim.Mem_port

type state = Idle | Complete

val state_to_word : state -> int
val state_of_word : int -> state option

(** Largest representable message id (28 bits). *)
val max_msg_id : int

(** {1 Timed accessors (application or engine side)} *)

val set_dest : Mem_port.t -> Layout.t -> buf:int -> Address.t -> unit
val dest : Mem_port.t -> Layout.t -> buf:int -> Address.t

(** [set_state] rewrites the state bits, preserving any stamped id. *)
val set_state : Mem_port.t -> Layout.t -> buf:int -> state -> unit

(** [set_state_and_id] writes state and message id in one store (the
    send-path stamp). *)
val set_state_and_id :
  Mem_port.t -> Layout.t -> buf:int -> mid:int -> state -> unit

val state : Mem_port.t -> Layout.t -> buf:int -> state option

(** [write_payload port layout ~buf ?at data] writes [data] into the
    payload area at byte offset [at] (default 0). Raises
    [Invalid_argument] if it would overrun the payload. *)
val write_payload :
  Mem_port.t -> Layout.t -> buf:int -> ?at:int -> Bytes.t -> unit

(** [read_payload port layout ~buf ?at len] reads [len] payload bytes. *)
val read_payload : Mem_port.t -> Layout.t -> buf:int -> ?at:int -> int -> Bytes.t

(** {1 Wire image}

    The engine DMAs the whole buffer (header + payload) to and from the
    network, so the destination address travels in the message itself —
    the "8 bytes of each message for internal addressing and
    synchronization". *)

(** [(pos, len)] of the full buffer for DMA. *)
val region : Layout.t -> buf:int -> int * int

(** [dest_of_image bytes] decodes word 0 of a wire image. *)
val dest_of_image : Bytes.t -> Address.t

(** [msg_id_of_image bytes] decodes the stamped message id from word 1 of
    a wire image (0 when short or unstamped). *)
val msg_id_of_image : Bytes.t -> int

(** {1 Frame checksum}

    With {!Config.t.frame_checksum} on, the last {!Config.checksum_bytes}
    of the message carry an FNV-1a digest ({!Checksum}) of everything
    before them — header words included. {!Config.payload_bytes} already
    excludes the trailer, so applications cannot overwrite it. *)

val checksum_enabled : Layout.t -> bool

(** [store_checksum port layout ~buf] digests the buffer's image and
    stores the trailer; timed (block read + hash instructions + one
    store). Call after the header words and payload are final. *)
val store_checksum : Mem_port.t -> Layout.t -> buf:int -> unit

(** The trailer value carried in a wire image. *)
val checksum_of_image : Bytes.t -> int

(** [image_checksum_ok bytes] recomputes the digest over the image and
    compares it with the trailer; [false] for damaged or short frames. *)
val image_checksum_ok : Bytes.t -> bool

(** {1 Untimed introspection (tracing, tests)} *)

val peek_state : Mem_port.t -> Layout.t -> buf:int -> int

(** The stamped message id of a local buffer (untimed). *)
val msg_id : Mem_port.t -> Layout.t -> buf:int -> int
