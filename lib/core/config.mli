(** FLIPC configuration, fixed at boot time.

    The paper fixes the message size when the system boots: "Transfer of
    messages larger than the fixed size selected at boot time is not
    supported." On the Paragon the DMA hardware requires messages of at
    least 64 bytes, in multiples of 32; FLIPC reserves 8 bytes of every
    message for internal addressing and synchronization, so the minimum
    application payload is 56 bytes.

    [lock_mode] and [layout_mode] correspond to the two cache optimizations
    of the paper's tuning section and exist so the ablation experiment can
    run both variants:
    - [Test_and_set] guards each endpoint operation with a multiprocessor
      lock (no cache residency on the Paragon — very slow); [Lock_free]
      is the optimized interface requiring at most one thread per endpoint.
    - [Packed] lays endpoint fields out contiguously so application-written
      and engine-written words share 32-byte cache lines (false sharing);
      [Padded] segregates fields by writer into distinct lines. *)

type lock_mode = Lock_free | Test_and_set
type layout_mode = Padded | Packed

(** Engine scheduling ablation knob. [Doorbell] is the work-proportional
    scheduler: the engine visits only send endpoints whose {!Layout.field}
    [Send_pending] doorbell is raised and rebuilds its priority schedule
    only when the schedule epoch changes. [Full_scan] is the original
    scan-everything iteration, kept so the scan-cost experiment can
    measure what the doorbells buy (see the [engine_scan] bench). *)
type sched_mode = Doorbell | Full_scan

type t = {
  message_bytes : int;  (** full message incl. 8-byte header; >= 64, mult. of 32 *)
  endpoints : int;  (** endpoint table size per node *)
  queue_capacity : int;  (** ring slots per endpoint (usable depth is one less) *)
  total_buffers : int;  (** message buffers in the communication buffer *)
  lock_mode : lock_mode;
  layout_mode : layout_mode;
  validity_checks : bool;
      (** engine-side checks protecting the messaging engine from a corrupt
          communication buffer; the paper reports they cost ~2 us *)
  engine_poll_ns : int;  (** mean cost of one messaging-engine loop iteration *)
  engine_poll_jitter : float;
      (** relative jitter on the poll interval (0.25 = +/-25%); models the
          variable per-iteration work of the coprocessor's protocol
          framework and keeps the deterministic simulator from phase-
          locking rhythmic workloads to the engine's scan cadence *)
  engine_park_after : int;
      (** idle iterations before the simulated engine parks; a simulation
          artifact so runs terminate — see {!Msg_engine} *)
  engine_rx_burst : int;
      (** maximum incoming messages the engine deposits per loop
          iteration; bounds iteration latency so one flooded node cannot
          monopolize the non-preemptible loop *)
  sched_mode : sched_mode;
  validity_check_instrs : int;  (** per-message instruction cost of checks *)
  dma_setup_ns : int;
  dma_ns_per_byte : float;
  frame_checksum : bool;
      (** carry a 32-bit {!Checksum} of the wire image in the last 4
          bytes of every message; the engine verifies it on receive and
          discards damaged frames. Costs 4 payload bytes plus the hash
          computation on both ends; off by default (the paper's FLIPC
          trusts the Paragon mesh). *)
  engine_shards : int;
      (** messaging engines per node (default 1). With [s] shards the
          node's endpoint space is partitioned by residue: shard [k] owns
          node-global endpoint [g] iff [g mod s = k]. Each shard runs its
          own engine loop with its own doorbell schedule and rx drain;
          the wait-free structures need no new locking because ownership
          stays single-writer per side. Shards are cooperative
          virtual-time processes (deterministic round-robin through the
          event heap); real-domain parallelism is an opt-in property of
          the firehose workload, never of the simulated machine. See
          DESIGN.md §16. *)
  engine_tx_batch : int;
      (** engine-side transmit coalescing (default 1 = the unbatched
          ablation): within one endpoint drain, messages after the first
          of each [engine_tx_batch]-sized run reuse the DMA channel
          programming (no [dma_setup_ns]) and the already-resident
          dispatch path (reduced per-message instruction charge). *)
  app_send_burst : int;
      (** application-side send burst used by batching-aware workloads
          (default 1 = the unbatched ablation): enqueue up to this many
          messages per doorbell ring + engine poke via {!Api.send_burst},
          amortizing the queue-cursor round-trip. *)
  app_recv_burst : int;
      (** application-side receive burst used by batching-aware
          workloads (default 1 = the unbatched ablation): drain up to
          this many messages per buffer-queue pointer round-trip via
          {!Api.receive_burst}. *)
}

(** 8 bytes: destination-address word + state word. *)
val header_bytes : int

(** 4 bytes: the frame-checksum trailer, charged against the payload only
    when [frame_checksum] is on. *)
val checksum_bytes : int

val payload_bytes : t -> int

(** Paragon-calibrated defaults: 128-byte messages, 8 endpoints, depth-8
    queues, 64 buffers, lock-free, padded, checks off. The nanosecond
    constants are calibrated so the FIG4 sweep reproduces the paper's
    latency line; see DESIGN.md. *)
val default : t

(** [with_message_bytes t n] rounds [n] up to a legal message size. *)
val with_message_bytes : t -> int -> t

(** [for_payload t n] configures the smallest legal message size carrying an
    [n]-byte application payload. *)
val for_payload : t -> int -> t

(** [validate t] checks the size/alignment rules above plus basic sanity
    (positive counts, queues at least 2 slots). *)
val validate : t -> (t, string) result

(** [validate_exn t] raises [Invalid_argument] on a bad configuration. *)
val validate_exn : t -> t

val pp : Format.formatter -> t -> unit
