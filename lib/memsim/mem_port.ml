module Engine = Flipc_sim.Engine

type t = {
  engine : Engine.t;
  mem : Shared_mem.t;
  bus : Bus.t;
  cache : Cache.t;
  port : Bus.port;
  name : string;
  mutable loads : int;
  mutable stores : int;
}

let create ~engine ~mem ~bus ~cache ~name =
  let port = Bus.attach bus cache in
  { engine; mem; bus; cache; port; name; loads = 0; stores = 0 }

let name t = t.name
let engine t = t.engine
let mem t = t.mem
let bus t = t.bus
let cache t = t.cache

let load t addr =
  t.loads <- t.loads + 1;
  Engine.delay (Bus.read t.bus ~port:t.port ~addr);
  Shared_mem.load_int t.mem addr

let store t addr v =
  t.stores <- t.stores + 1;
  Engine.delay (Bus.write t.bus ~port:t.port ~addr);
  Shared_mem.store_int t.mem addr v

let load_count t = t.loads
let store_count t = t.stores

let reset_counts t =
  t.loads <- 0;
  t.stores <- 0

let test_and_set t addr =
  Engine.delay (Bus.locked_rmw t.bus ~port:t.port ~addr);
  let old = Shared_mem.load_int t.mem addr in
  Shared_mem.store_int t.mem addr 1;
  old = 0

let fetch_add t addr n =
  Engine.delay (Bus.locked_rmw t.bus ~port:t.port ~addr);
  let old = Shared_mem.load_int t.mem addr in
  Shared_mem.store_int t.mem addr (old + n);
  old

let clear t addr = store t addr 0

let lines_cost t ~pos ~len ~write =
  let line_bytes = Cache.line_bytes t.cache in
  let first = pos land lnot (line_bytes - 1) in
  let cost = ref 0 in
  let line = ref first in
  while !line < pos + len do
    let access = if write then Bus.write else Bus.read in
    cost := !cost + access t.bus ~port:t.port ~addr:!line;
    line := !line + line_bytes
  done;
  !cost

let read_bytes t ~pos ~len =
  Engine.delay (lines_cost t ~pos ~len ~write:false);
  Shared_mem.read_bytes t.mem ~pos ~len

let write_bytes t ~pos b =
  Engine.delay (lines_cost t ~pos ~len:(Bytes.length b) ~write:true);
  Shared_mem.write_bytes t.mem ~pos b

let instr t n =
  if n > 0 then
    Engine.delay (n * (Bus.cost_model t.bus).Cost_model.instr_ns)

let peek t addr = Shared_mem.load_int t.mem addr
let poke t addr v = Shared_mem.store_int t.mem addr v
