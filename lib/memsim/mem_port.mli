(** Timed, coherent memory access for one simulated processor.

    A [Mem_port.t] binds a processor's cache to a node's memory, bus and the
    simulation clock. Every operation advances virtual time by the cost the
    coherence model returns, then performs the real data access on the
    backing {!Shared_mem}. All operations must therefore be called from
    inside a simulation process.

    FLIPC's wait-free structures rely on single-word loads and stores being
    atomic; the simulator guarantees this because a process is never
    preempted between suspension points, and every timed operation delays
    {e before} touching memory, so the data access itself is atomic. *)

type t

val create :
  engine:Flipc_sim.Engine.t ->
  mem:Shared_mem.t ->
  bus:Bus.t ->
  cache:Cache.t ->
  name:string ->
  t

val name : t -> string
val engine : t -> Flipc_sim.Engine.t
val mem : t -> Shared_mem.t
val bus : t -> Bus.t
val cache : t -> Cache.t

(** {1 Timed operations (call from a simulation process)} *)

(** [load t addr] reads a 32-bit word as a non-negative int. *)
val load : t -> int -> int

(** [store t addr v] writes a 32-bit word. *)
val store : t -> int -> int -> unit

(** [test_and_set t addr] atomically sets the word at [addr] to 1 and
    returns [true] iff it was 0 (lock acquired). Bus-locked: very slow on
    the Paragon model. *)
val test_and_set : t -> int -> bool

(** [fetch_add t addr n] atomically adds [n] to the word at [addr] and
    returns the previous value. Bus-locked, same cost as
    {!test_and_set}; the multi-producer doorbell summary word is its
    one hot-path user — plain load+store there would lose increments
    when two applications ring concurrently. *)
val fetch_add : t -> int -> int -> int

(** [clear t addr] releases a test-and-set lock with an ordinary store. *)
val clear : t -> int -> unit

(** [read_bytes]/[write_bytes] move payload-sized blocks, charged one cache
    access per line touched. *)
val read_bytes : t -> pos:int -> len:int -> Bytes.t

val write_bytes : t -> pos:int -> Bytes.t -> unit

(** [instr t n] charges [n] ordinary instructions of CPU time; used to model
    the non-memory part of library code paths. *)
val instr : t -> int -> unit

(** {1 Untimed operations (test setup and inspection only)} *)

val peek : t -> int -> int
val poke : t -> int -> int -> unit

(** {1 Operation accounting}

    Word loads/stores issued through this port since creation (or the
    last {!reset_counts}); [peek]/[poke] and block transfers are not
    counted. The [engine_scan] bench uses these to show the engine's
    idle-iteration memory traffic is proportional to active endpoints,
    not configured endpoints. *)

val load_count : t -> int
val store_count : t -> int
val reset_counts : t -> unit
