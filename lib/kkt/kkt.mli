(** Kernel-to-Kernel Transport (KKT): RPC-style message delivery.

    KKT is the kernel transport interface the FLIPC project used for its
    portable development path: it "uses an RPC to deliver each message",
    which the paper notes "is not a good match to the one way messages used
    by FLIPC" — but it ran unchanged on the Ethernet cluster, the SCSI
    cluster and the Paragon, letting the platform-independent parts of
    FLIPC be debugged without scarce Paragon time.

    Model: a [call] traps into the kernel, marshals the payload, sends a
    request packet, and blocks until the remote kernel's handler runs and
    its reply packet returns. Each node may register one server handler. *)

type config = {
  trap_ns : int;  (** kernel entry/exit, charged twice per side *)
  marshal_ns_per_byte : float;
  dispatch_ns : int;  (** remote interrupt + kernel dispatch *)
}

val default_config : config

type t

(** [create ~sim ~config ()] makes an empty transport domain; nodes join
    via [attach]. [mid_of] recovers the causal message id carried inside
    an opaque payload (default: none) so the RPC lifecycle events can
    join the message's causal span. *)
val create :
  ?config:config ->
  ?mid_of:(Bytes.t -> int) ->
  sim:Flipc_sim.Engine.t ->
  unit ->
  t

(** [set_obs t obs] routes RPC lifecycle events ([Kkt_call] →
    [Kkt_dispatch] → [Kkt_reply] → [Kkt_complete]) to [obs] whenever its
    tracing gate is open. *)
val set_obs : t -> Flipc_obs.Obs.t -> unit

(** [attach t ~nic] joins a node, claiming the NIC's KKT protocol
    callback. Must be called once per node before [call]s involving it. *)
val attach : t -> nic:Flipc_net.Nic.t -> unit

(** [serve t ~node handler] registers the node's request handler. The
    handler runs in kernel context (a fresh simulation process) and its
    return value is the RPC reply. *)
val serve : t -> node:int -> (Bytes.t -> Bytes.t) -> unit

(** [call t ~src ~dst payload] performs a blocking RPC from node [src] to
    node [dst]. Must run inside a simulation process. Raises
    [Invalid_argument] if either node is not attached. *)
val call : t -> src:int -> dst:int -> Bytes.t -> Bytes.t

(** Completed calls (for tests). *)
val calls_completed : t -> int
