module Machine = Flipc.Machine
module Address = Flipc.Address
module Msg_engine = Flipc.Msg_engine
module Nic = Flipc_net.Nic

let transport kkt ~node ~nic ~node_count ~deliver =
  Kkt.attach kkt ~nic;
  Kkt.serve kkt ~node (fun image ->
      deliver image;
      Bytes.create 0);
  {
    Msg_engine.tname = "kkt";
    transmit =
      (fun ~dst image ->
        if Address.is_null dst then Error `Bad_dest
        else
          let dnode = Address.node dst in
          if dnode < 0 || dnode >= node_count then Error `Bad_dest
          else begin
            (* One RPC per message: the engine blocks until the remote
               kernel acknowledges — the structural mismatch the paper
               reports for one-way messaging over KKT. *)
            ignore (Kkt.call kkt ~src:node ~dst:dnode image : Bytes.t);
            Ok ()
          end);
  }

let machine ?config ?cost ?kkt_config ?app_cpus kind () =
  (* The KKT domain needs the simulation engine, which Machine.create
     builds; create our own and rely on the maker being called during
     boot. We therefore construct the domain lazily at first maker call. *)
  let domain = ref None in
  let maker ~node ~nic ~node_count ~deliver =
    let kkt =
      match !domain with
      | Some kkt -> kkt
      | None ->
          let kkt =
            (* RPC payloads are flipc wire images, so the stamped
               message id is recoverable and KKT lifecycle events join
               the message's causal span. *)
            Kkt.create ?config:kkt_config
              ~mid_of:Flipc.Msg_buffer.msg_id_of_image
              ~sim:(Nic.engine nic) ()
          in
          domain := Some kkt;
          kkt
    in
    transport kkt ~node ~nic ~node_count ~deliver
  in
  let m = Machine.create ?config ?cost ?app_cpus ~transport:maker kind () in
  (match !domain with Some kkt -> Kkt.set_obs kkt (Machine.obs m) | None -> ());
  m
