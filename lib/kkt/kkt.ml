module Sim = Flipc_sim.Engine
module Condvar = Flipc_sim.Sync.Condvar
module Nic = Flipc_net.Nic
module Packet = Flipc_net.Packet
module Obs = Flipc_obs.Obs
module Event = Flipc_obs.Event

type config = {
  trap_ns : int;
  marshal_ns_per_byte : float;
  dispatch_ns : int;
}

let default_config =
  { trap_ns = 2_500; marshal_ns_per_byte = 10.0; dispatch_ns = 6_000 }

let tag_request = 0
let tag_reply = 1

type pending = { mutable reply : Bytes.t option; cv : Condvar.t }

type t = {
  sim : Sim.t;
  config : config;
  nics : (int, Nic.t) Hashtbl.t;
  handlers : (int, Bytes.t -> Bytes.t) Hashtbl.t;
  pending : (int, pending) Hashtbl.t;  (* call id -> waiter *)
  mutable next_id : int;
  mutable completed : int;
  (* Trace wiring: the observability bundle RPC lifecycle events go to,
     and the caller's rule for recovering a causal message id from an
     opaque payload (kkt_flipc reads the flipc image's stamped mid). *)
  mutable obs : Obs.t option;
  mid_of : Bytes.t -> int;
}

let create ?(config = default_config) ?(mid_of = fun _ -> 0) ~sim () =
  {
    sim;
    config;
    nics = Hashtbl.create 16;
    handlers = Hashtbl.create 16;
    pending = Hashtbl.create 16;
    next_id = 0;
    completed = 0;
    obs = None;
    mid_of;
  }

let set_obs t obs = t.obs <- Some obs

let emit t ev =
  match t.obs with
  | Some o when Obs.tracing o -> Obs.event o (ev ())
  | _ -> ()

let marshal_ns t len =
  int_of_float (Float.round (float_of_int len *. t.config.marshal_ns_per_byte))

let nic_of t node =
  match Hashtbl.find_opt t.nics node with
  | Some nic -> nic
  | None -> invalid_arg (Printf.sprintf "Kkt: node %d not attached" node)

let handle_request t (p : Packet.t) =
  (* Remote kernel: interrupt, dispatch, run the handler, send the reply. *)
  Sim.delay t.config.dispatch_ns;
  let mid = t.mid_of p.Packet.payload in
  let valid = Hashtbl.mem t.handlers p.Packet.dst in
  emit t (fun () ->
      Event.Kkt_dispatch { node = p.Packet.dst; id = p.Packet.seq; valid; mid });
  let reply =
    match Hashtbl.find_opt t.handlers p.Packet.dst with
    | Some handler -> handler p.Packet.payload
    | None -> Bytes.create 0
  in
  Sim.delay (marshal_ns t (Bytes.length reply));
  emit t (fun () ->
      Event.Kkt_reply
        { node = p.Packet.dst; dst_node = p.Packet.src; id = p.Packet.seq; mid });
  Nic.send (nic_of t p.Packet.dst)
    (Packet.make ~src:p.Packet.dst ~dst:p.Packet.src ~protocol:Packet.Kkt
       ~tag:tag_reply ~seq:p.Packet.seq reply)

let handle_reply t (p : Packet.t) =
  match Hashtbl.find_opt t.pending p.Packet.seq with
  | None -> ()
  | Some waiter ->
      Hashtbl.remove t.pending p.Packet.seq;
      waiter.reply <- Some p.Packet.payload;
      Condvar.broadcast waiter.cv

let attach t ~nic =
  Hashtbl.replace t.nics (Nic.node nic) nic;
  Nic.set_callback nic Packet.Kkt (fun p ->
      if p.Packet.tag = tag_request then handle_request t p
      else handle_reply t p)

let serve t ~node handler = Hashtbl.replace t.handlers node handler

let call t ~src ~dst payload =
  let src_nic = nic_of t src in
  ignore (nic_of t dst);
  t.next_id <- t.next_id + 1;
  let id = t.next_id in
  let mid = t.mid_of payload in
  emit t (fun () -> Event.Kkt_call { node = src; dst_node = dst; id; mid });
  let waiter = { reply = None; cv = Condvar.create () } in
  Hashtbl.replace t.pending id waiter;
  (* Client kernel: trap in, marshal, transmit, block for the reply. *)
  Sim.delay t.config.trap_ns;
  Sim.delay (marshal_ns t (Bytes.length payload));
  Nic.send src_nic
    (Packet.make ~src ~dst ~protocol:Packet.Kkt ~tag:tag_request ~seq:id
       payload);
  let rec wait () =
    match waiter.reply with
    | Some reply -> reply
    | None ->
        Condvar.wait waiter.cv;
        wait ()
  in
  let reply = wait () in
  Sim.delay t.config.trap_ns;
  t.completed <- t.completed + 1;
  emit t (fun () -> Event.Kkt_complete { node = src; id; mid });
  reply

let calls_completed t = t.completed
