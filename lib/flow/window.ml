module Api = Flipc.Api
module Address = Flipc.Address
module Mem_port = Flipc_memsim.Mem_port
module Obs = Flipc_obs.Obs

let ok = function
  | Ok v -> v
  | Error e -> failwith ("Window: " ^ Api.error_to_string e)

let emit api ev =
  match Api.obs api with
  | Some o when Obs.tracing o -> Obs.event o (ev ())
  | _ -> ()

(* Export per-endpoint flow-control state as [node<i>.window.ep<n>.*]
   pull-probes on the machine's metrics registry (sampled at snapshot
   time; no bookkeeping on the send/receive path). *)
let register_probes api ~ep fields =
  match Api.obs api with
  | Some o ->
      let addr = Api.address api ep in
      let pfx =
        Printf.sprintf "node%d.window.ep%d." (Address.node addr)
          (Address.endpoint addr)
      in
      List.iter
        (fun (name, f) ->
          Flipc_obs.Metrics.probe (Obs.metrics o) (pfx ^ name) (fun () ->
              float_of_int (f ())))
        fields
  | None -> ()

let default_grant_every window = max 1 (window / 2)

(* Credit messages carry the receiver's cumulative consumed count in their
   first payload word. Cumulative (not incremental) grants make credit loss
   self-healing: any later credit message supersedes a discarded one. *)
let encode_count count =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int count);
  b

let decode_count b = Int32.to_int (Bytes.get_int32_le b 0)

type receiver = {
  r_api : Api.t;
  data_ep : Api.endpoint;
  credit_ep : Api.endpoint;
  grant_every : int;
  mutable pending_grants : int;
  mutable consumed : int;
  mutable received : int;
  mutable credits_sent : int;
}

let create_receiver api ~data_ep ~credit_ep ~window ?grant_every () =
  if window < 1 then invalid_arg "Window.create_receiver: window < 1";
  let grant_every =
    match grant_every with
    | Some g -> max 1 g
    | None -> default_grant_every window
  in
  for _ = 1 to window do
    let buf = ok (Api.allocate_buffer api) in
    ok (Api.post_receive api data_ep buf)
  done;
  let r =
    {
      r_api = api;
      data_ep;
      credit_ep;
      grant_every;
      pending_grants = 0;
      consumed = 0;
      received = 0;
      credits_sent = 0;
    }
  in
  register_probes api ~ep:data_ep
    [
      ("received", fun () -> r.received);
      ("consumed", fun () -> r.consumed);
      ("credits_sent", fun () -> r.credits_sent);
    ];
  r

let recv r =
  match Api.receive r.r_api r.data_ep with
  | None -> None
  | Some buf ->
      r.received <- r.received + 1;
      Some buf

let send_credit r =
  (* Reuse a reclaimed credit buffer when available so the credit channel
     needs only a couple of buffers in steady state. *)
  let buf =
    match Api.reclaim r.r_api r.credit_ep with
    | Some buf -> buf
    | None -> ok (Api.allocate_buffer r.r_api)
  in
  Api.write_payload r.r_api buf (encode_count r.consumed);
  ok (Api.send r.r_api r.credit_ep buf);
  r.credits_sent <- r.credits_sent + 1;
  emit r.r_api (fun () ->
      let addr = Api.address r.r_api r.data_ep in
      Flipc_obs.Event.Credit_grant
        {
          node = Address.node addr;
          ep = Address.endpoint addr;
          count = r.consumed;
        })

let consumed r buf =
  ok (Api.post_receive r.r_api r.data_ep buf);
  r.consumed <- r.consumed + 1;
  r.pending_grants <- r.pending_grants + 1;
  if r.pending_grants >= r.grant_every then begin
    send_credit r;
    r.pending_grants <- 0
  end

let messages_received r = r.received

type sender = {
  s_api : Api.t;
  s_data_ep : Api.endpoint;
  credit_recv_ep : Api.endpoint;
  window : int;
  mutable granted : int; (* peer's highest cumulative consumed count *)
  mutable sent : int;
  mutable credit_drops : int;
}

let create_sender api ~data_ep ~credit_recv_ep ~window ?grant_every () =
  if window < 1 then invalid_arg "Window.create_sender: window < 1";
  let grant_every =
    match grant_every with
    | Some g -> max 1 g
    | None -> default_grant_every window
  in
  (* Post enough buffers to absorb every credit message that can be in
     flight at once: the receiver grants one per [grant_every] consumed
     messages, and at most [window] are unconsumed, so the ceiling is
     [window / grant_every] plus slack for the boundary. Posting is
     best-effort against a shallow endpoint ring; the drop counter below
     accounts for anything beyond it. *)
  let posts = (window + grant_every - 1) / grant_every + 2 in
  let rec post k =
    if k < posts then
      match Api.allocate_buffer api with
      | Error e -> failwith ("Window: " ^ Api.error_to_string e)
      | Ok buf -> (
          match Api.post_receive api credit_recv_ep buf with
          | Ok () -> post (k + 1)
          | Error `Full -> Api.free_buffer api buf
          | Error e -> failwith ("Window: " ^ Api.error_to_string e))
  in
  post 0;
  let s =
    {
      s_api = api;
      s_data_ep = data_ep;
      credit_recv_ep;
      window;
      granted = 0;
      sent = 0;
      credit_drops = 0;
    }
  in
  register_probes api ~ep:data_ep
    [
      ("sent", fun () -> s.sent);
      ("granted", fun () -> s.granted);
      ("credit_drops", fun () -> s.credit_drops);
    ];
  s

let absorb_credits s =
  let rec loop () =
    match Api.receive s.s_api s.credit_recv_ep with
    | None -> ()
    | Some buf ->
        let cum = decode_count (Api.read_payload s.s_api buf 4) in
        if cum > s.granted then s.granted <- cum;
        ok (Api.post_receive s.s_api s.credit_recv_ep buf);
        loop ()
  in
  loop ();
  (* A discarded credit message is recovered by the next one (cumulative
     counts); record that it happened for diagnostics. *)
  s.credit_drops <-
    s.credit_drops + Api.drops_read_and_reset s.s_api s.credit_recv_ep

let credits_available s = s.window - (s.sent - s.granted)

let do_send s buf =
  ok (Api.send s.s_api s.s_data_ep buf);
  s.sent <- s.sent + 1;
  emit s.s_api (fun () ->
      let addr = Api.address s.s_api s.s_data_ep in
      Flipc_obs.Event.Window_send
        {
          node = Address.node addr;
          ep = Address.endpoint addr;
          mid = Api.last_msg_id s.s_api;
          sent = s.sent;
          granted = s.granted;
          window = s.window;
        })

let send s buf =
  absorb_credits s;
  while credits_available s <= 0 do
    Mem_port.instr (Api.port s.s_api) 10;
    absorb_credits s
  done;
  do_send s buf

let send_deadline s ~deadline buf =
  absorb_credits s;
  let rec wait () =
    if credits_available s > 0 then begin
      do_send s buf;
      Ok ()
    end
    else if Api.now s.s_api >= deadline then Error `Timeout
    else begin
      Mem_port.instr (Api.port s.s_api) 10;
      absorb_credits s;
      wait ()
    end
  in
  wait ()

(* Deprecated spin-count variant: each legacy spin polled once and burned
   10 instructions, so the equivalent budget is [max_spins * 10 *
   instr_ns] of virtual time from now. *)
let send_timeout s ?(max_spins = 100_000) buf =
  let deadline = Api.now s.s_api + (max_spins * 10 * Api.instr_ns s.s_api) in
  send_deadline s ~deadline buf

let try_send s buf =
  absorb_credits s;
  if credits_available s > 0 then begin
    do_send s buf;
    true
  end
  else false

let credit_drops s = s.credit_drops
let messages_sent s = s.sent
