module Api = Flipc.Api
module Address = Flipc.Address
module Engine = Flipc_sim.Engine
module Mem_port = Flipc_memsim.Mem_port
module Obs = Flipc_obs.Obs

let emit api ev =
  match Api.obs api with
  | Some o when Obs.tracing o -> Obs.event o (ev ())
  | _ -> ()

(* Export retransmission-protocol state as [node<i>.retrans.ep<n>.*]
   pull-probes (sampled at snapshot time). *)
let register_probes api ~ep fields =
  match Api.obs api with
  | Some o ->
      let addr = Api.address api ep in
      let pfx =
        Printf.sprintf "node%d.retrans.ep%d." (Address.node addr)
          (Address.endpoint addr)
      in
      List.iter
        (fun (name, f) ->
          Flipc_obs.Metrics.probe (Obs.metrics o) (pfx ^ name) (fun () ->
              float_of_int (f ())))
        fields
  | None -> ()

type config = {
  window : int;
  rto_ns : int;
  max_rto_ns : int;
  ack_every : int;
  max_retries : int;
  spin_ns : int;
}

let default_config =
  {
    window = 8;
    rto_ns = 1_000_000;
    max_rto_ns = 8_000_000;
    ack_every = 1;
    max_retries = 30;
    spin_ns = 200;
  }

let header_bytes = 8
let capacity api = Api.payload_bytes api - header_bytes

let validate c =
  if c.window < 1 then invalid_arg "Retrans: window < 1";
  if c.rto_ns < 1 || c.max_rto_ns < c.rto_ns then
    invalid_arg "Retrans: bad timeout bounds";
  if c.ack_every < 1 then invalid_arg "Retrans: ack_every < 1";
  if c.max_retries < 1 then invalid_arg "Retrans: max_retries < 1";
  if c.spin_ns < 1 then invalid_arg "Retrans: spin_ns < 1"

let ok = function
  | Ok v -> v
  | Error e -> failwith ("Retrans: " ^ Api.error_to_string e)

(* Post receive buffers best-effort: the endpoint ring may be shallower
   than the ideal count; whatever fits still bounds the common case, and
   the cumulative protocol recovers anything discarded beyond it. *)
let post_up_to api ep n =
  let rec go k =
    if k < n then
      match Api.allocate_buffer api with
      | Error _ -> ()
      | Ok buf -> (
          match Api.post_receive api ep buf with
          | Ok () -> go (k + 1)
          | Error _ -> Api.free_buffer api buf)
  in
  go 0

let encode_frame api buf ~seq payload =
  let len = Bytes.length payload in
  let framed = Bytes.create (header_bytes + len) in
  Bytes.set_int32_le framed 0 (Int32.of_int seq);
  Bytes.set_int32_le framed 4 (Int32.of_int len);
  Bytes.blit payload 0 framed header_bytes len;
  Api.write_payload api buf framed

(* An in-flight message awaiting acknowledgement. *)
type pending = { seq : int; payload : Bytes.t; mutable retries : int }

type sender = {
  s_api : Api.t;
  sim : Engine.t;
  cfg : config;
  data_ep : Api.endpoint;
  ack_ep : Api.endpoint;
  pool : Api.buffer Queue.t;
  inflight : pending Queue.t;
  mutable next_seq : int;
  mutable s_acked : int;
  mutable timer : int; (* virtual time of the last protocol progress *)
  mutable rto_cur : int;
  mutable s_retransmits : int;
  mutable s_ack_drops : int;
}

let create_sender api ~sim ~data_ep ~ack_ep ?(config = default_config) () =
  validate config;
  post_up_to api ack_ep (config.window + 2);
  let pool = Queue.create () in
  for _ = 1 to config.window + 2 do
    Queue.push (ok (Api.allocate_buffer api)) pool
  done;
  let s =
    {
      s_api = api;
      sim;
      cfg = config;
      data_ep;
      ack_ep;
      pool;
      inflight = Queue.create ();
      next_seq = 1;
      s_acked = 0;
      timer = Engine.now sim;
      rto_cur = config.rto_ns;
      s_retransmits = 0;
      s_ack_drops = 0;
    }
  in
  register_probes api ~ep:data_ep
    [
      ("retransmits", fun () -> s.s_retransmits);
      ("acked", fun () -> s.s_acked);
      ("inflight", fun () -> Queue.length s.inflight);
      ("rto_ns", fun () -> s.rto_cur);
      ("ack_drops", fun () -> s.s_ack_drops);
    ];
  s

let reclaim_into_pool s =
  let rec loop () =
    match Api.reclaim s.s_api s.data_ep with
    | Some buf ->
        Queue.push buf s.pool;
        loop ()
    | None -> ()
  in
  loop ()

let absorb_acks s =
  let progress = ref false in
  let rec loop () =
    match Api.receive s.s_api s.ack_ep with
    | None -> ()
    | Some buf ->
        let cum = Int32.to_int (Bytes.get_int32_le (Api.read_payload s.s_api buf 4) 0) in
        (match Api.post_receive s.s_api s.ack_ep buf with
        | Ok () -> ()
        | Error _ -> Api.free_buffer s.s_api buf);
        if cum > s.s_acked then begin
          s.s_acked <- cum;
          progress := true
        end;
        loop ()
  in
  loop ();
  s.s_ack_drops <- s.s_ack_drops + Api.drops_read_and_reset s.s_api s.ack_ep;
  if !progress then begin
    while
      (not (Queue.is_empty s.inflight))
      && (Queue.peek s.inflight).seq <= s.s_acked
    do
      ignore (Queue.pop s.inflight)
    done;
    s.rto_cur <- s.cfg.rto_ns;
    s.timer <- Engine.now s.sim
  end

(* Take a transmit buffer, waiting (bounded) for the engine to hand back
   one of ours; [None] only if the engine has stopped processing. *)
let take_buffer s =
  let rec wait spins =
    reclaim_into_pool s;
    match Queue.take_opt s.pool with
    | Some buf -> Some buf
    | None ->
        if spins > 100_000 then None
        else begin
          Mem_port.instr (Api.port s.s_api) s.cfg.spin_ns;
          wait (spins + 1)
        end
  in
  wait 0

let transmit s ~seq payload =
  match take_buffer s with
  | None -> Error `Timeout
  | Some buf -> (
      encode_frame s.s_api buf ~seq payload;
      match Api.send s.s_api s.data_ep buf with
      | Ok () -> Ok ()
      | Error _ ->
          (* Queue momentarily full: surrender the slot; the next
             retransmission round retries. *)
          Queue.push buf s.pool;
          Ok ())

let check_retransmit s =
  if
    (not (Queue.is_empty s.inflight))
    && Engine.now s.sim - s.timer >= s.rto_cur
  then
    if (Queue.peek s.inflight).retries >= s.cfg.max_retries then Error `Timeout
    else begin
      (* Go-back-N: resend the whole unacknowledged window in order. *)
      let failed = ref false in
      Queue.iter
        (fun p ->
          if not !failed then begin
            match transmit s ~seq:p.seq p.payload with
            | Ok () ->
                p.retries <- p.retries + 1;
                s.s_retransmits <- s.s_retransmits + 1;
                emit s.s_api (fun () ->
                    let addr = Api.address s.s_api s.data_ep in
                    Flipc_obs.Event.Retransmit
                      {
                        node = Address.node addr;
                        ep = Address.endpoint addr;
                        seq = p.seq;
                      })
            | Error `Timeout -> failed := true
          end)
        s.inflight;
      s.rto_cur <- min (s.rto_cur * 2) s.cfg.max_rto_ns;
      s.timer <- Engine.now s.sim;
      if !failed then Error `Timeout else Ok ()
    end
  else Ok ()

let pump s =
  absorb_acks s;
  check_retransmit s

let send s payload =
  if Bytes.length payload > capacity s.s_api then
    invalid_arg "Retrans.send: payload exceeds channel capacity";
  let rec wait_window () =
    match pump s with
    | Error `Timeout -> Error `Timeout
    | Ok () ->
        if Queue.length s.inflight < s.cfg.window then Ok ()
        else begin
          Mem_port.instr (Api.port s.s_api) s.cfg.spin_ns;
          wait_window ()
        end
  in
  match wait_window () with
  | Error `Timeout -> Error `Timeout
  | Ok () -> (
      let seq = s.next_seq in
      let copy = Bytes.copy payload in
      if Queue.is_empty s.inflight then begin
        s.timer <- Engine.now s.sim;
        s.rto_cur <- s.cfg.rto_ns
      end;
      match transmit s ~seq copy with
      | Error `Timeout -> Error `Timeout
      | Ok () ->
          s.next_seq <- seq + 1;
          Queue.push { seq; payload = copy; retries = 0 } s.inflight;
          Ok ())

let flush s ~timeout_ns =
  let deadline = Engine.now s.sim + timeout_ns in
  let rec loop () =
    if Queue.is_empty s.inflight then Ok ()
    else if Engine.now s.sim > deadline then Error `Timeout
    else
      match pump s with
      | Error `Timeout -> Error `Timeout
      | Ok () ->
          Mem_port.instr (Api.port s.s_api) s.cfg.spin_ns;
          loop ()
  in
  loop ()

let in_flight s = Queue.length s.inflight
let acked s = s.s_acked
let retransmits s = s.s_retransmits
let ack_drops s = s.s_ack_drops

type receiver = {
  r_api : Api.t;
  r_cfg : config;
  r_data_ep : Api.endpoint;
  r_ack_ep : Api.endpoint;
  mutable expected : int; (* highest in-order sequence accepted *)
  mutable pending_ack : int;
  mutable r_delivered : int;
  mutable r_duplicates : int;
  mutable r_reordered : int;
  mutable r_acks_sent : int;
  mutable r_drops : int;
}

let create_receiver api ~data_ep ~ack_ep ?(config = default_config) () =
  validate config;
  post_up_to api data_ep (config.window + 2);
  let r =
    {
      r_api = api;
      r_cfg = config;
      r_data_ep = data_ep;
      r_ack_ep = ack_ep;
      expected = 0;
      pending_ack = 0;
      r_delivered = 0;
      r_duplicates = 0;
      r_reordered = 0;
      r_acks_sent = 0;
      r_drops = 0;
    }
  in
  register_probes api ~ep:data_ep
    [
      ("delivered", fun () -> r.r_delivered);
      ("duplicates", fun () -> r.r_duplicates);
      ("reordered", fun () -> r.r_reordered);
      ("acks_sent", fun () -> r.r_acks_sent);
      ("transport_drops", fun () -> r.r_drops);
    ];
  r

let send_ack r =
  let buf =
    match Api.reclaim r.r_api r.r_ack_ep with
    | Some buf -> Some buf
    | None -> (
        match Api.allocate_buffer r.r_api with
        | Ok buf -> Some buf
        | Error _ -> None)
  in
  match buf with
  | None -> () (* pool exhausted; a later ack supersedes this one *)
  | Some buf -> (
      let b = Bytes.create 4 in
      Bytes.set_int32_le b 0 (Int32.of_int r.expected);
      Api.write_payload r.r_api buf b;
      match Api.send r.r_api r.r_ack_ep buf with
      | Ok () ->
          r.r_acks_sent <- r.r_acks_sent + 1;
          r.pending_ack <- 0
      | Error _ -> Api.free_buffer r.r_api buf)

let repost r buf =
  match Api.post_receive r.r_api r.r_data_ep buf with
  | Ok () -> ()
  | Error _ -> Api.free_buffer r.r_api buf

let rec recv r =
  r.r_drops <- r.r_drops + Api.drops_read_and_reset r.r_api r.r_data_ep;
  match Api.receive r.r_api r.r_data_ep with
  | None -> None
  | Some buf ->
      let header = Api.read_payload r.r_api buf header_bytes in
      let seq = Int32.to_int (Bytes.get_int32_le header 0) in
      let len = Int32.to_int (Bytes.get_int32_le header 4) in
      if seq < 1 || len < 0 || len > capacity r.r_api then begin
        (* Not a retransmission frame; skip it. *)
        repost r buf;
        recv r
      end
      else if seq = r.expected + 1 then begin
        let payload = Api.read_payload r.r_api buf ~at:header_bytes len in
        repost r buf;
        r.expected <- seq;
        r.r_delivered <- r.r_delivered + 1;
        r.pending_ack <- r.pending_ack + 1;
        if r.pending_ack >= r.r_cfg.ack_every then send_ack r;
        Some payload
      end
      else begin
        repost r buf;
        if seq <= r.expected then
          r.r_duplicates <- r.r_duplicates + 1
        else r.r_reordered <- r.r_reordered + 1;
        (* Re-acknowledge immediately so the sender unsticks. *)
        send_ack r;
        recv r
      end

let delivered r = r.r_delivered
let duplicates r = r.r_duplicates
let reordered r = r.r_reordered
let acks_sent r = r.r_acks_sent
let transport_drops r = r.r_drops
