module Api = Flipc.Api
module Address = Flipc.Address
module Engine = Flipc_sim.Engine
module Mem_port = Flipc_memsim.Mem_port
module Obs = Flipc_obs.Obs

let emit api ev =
  match Api.obs api with
  | Some o when Obs.tracing o -> Obs.event o (ev ())
  | _ -> ()

(* Export retransmission-protocol state as [node<i>.retrans.ep<n>.*]
   pull-probes (sampled at snapshot time). *)
let register_probes api ~ep fields =
  match Api.obs api with
  | Some o ->
      let addr = Api.address api ep in
      let pfx =
        Printf.sprintf "node%d.retrans.ep%d." (Address.node addr)
          (Address.endpoint addr)
      in
      List.iter
        (fun (name, f) ->
          Flipc_obs.Metrics.probe (Obs.metrics o) (pfx ^ name) (fun () ->
              float_of_int (f ())))
        fields
  | None -> ()

type mode = Selective_repeat | Go_back_n

type config = {
  window : int;
  rto_ns : int;
  max_rto_ns : int;
  ack_every : int;
  max_retries : int;
  spin_ns : int;
  mode : mode;
}

let default_config =
  {
    window = 8;
    rto_ns = 1_000_000;
    max_rto_ns = 8_000_000;
    ack_every = 1;
    max_retries = 30;
    spin_ns = 200;
    mode = Selective_repeat;
  }

let header_bytes = 8
let sack_width = 64
let ack_bytes = 12
let capacity api = Api.payload_bytes api - header_bytes

let validate c =
  if c.window < 1 then invalid_arg "Retrans: window < 1";
  if c.window > sack_width then
    invalid_arg "Retrans: window exceeds SACK bitmap width";
  if c.rto_ns < 1 || c.max_rto_ns < c.rto_ns then
    invalid_arg "Retrans: bad timeout bounds";
  if c.ack_every < 1 then invalid_arg "Retrans: ack_every < 1";
  if c.max_retries < 1 then invalid_arg "Retrans: max_retries < 1";
  if c.spin_ns < 1 then invalid_arg "Retrans: spin_ns < 1"

let ok = function
  | Ok v -> v
  | Error e -> failwith ("Retrans: " ^ Api.error_to_string e)

(* Post receive buffers best-effort: the endpoint ring may be shallower
   than the ideal count; whatever fits still bounds the common case, and
   the cumulative protocol recovers anything discarded beyond it. *)
let post_up_to api ep n =
  let rec go k =
    if k < n then
      match Api.allocate_buffer api with
      | Error _ -> ()
      | Ok buf -> (
          match Api.post_receive api ep buf with
          | Ok () -> go (k + 1)
          | Error _ -> Api.free_buffer api buf)
  in
  go 0

let encode_frame api buf ~seq payload =
  let len = Bytes.length payload in
  let framed = Bytes.create (header_bytes + len) in
  Bytes.set_int32_le framed 0 (Int32.of_int seq);
  Bytes.set_int32_le framed 4 (Int32.of_int len);
  Bytes.blit payload 0 framed header_bytes len;
  Api.write_payload api buf framed

(* An in-flight message awaiting acknowledgement. [sacked] means the
   receiver reported holding it out of order (selective repeat only);
   [retransmitted] excludes the frame from RTT sampling (Karn's rule:
   an ack for it could belong to either transmission). *)
type pending = {
  seq : int;
  payload : Bytes.t;
  mutable retries : int;
  mutable sacked : bool;
  mutable sent_at : int;
  mutable retransmitted : bool;
}

type sender = {
  s_api : Api.t;
  sim : Engine.t;
  cfg : config;
  data_ep : Api.endpoint;
  ack_ep : Api.endpoint;
  pool : Api.buffer Queue.t;
  inflight : pending Queue.t;
  mutable next_seq : int;
  mutable s_acked : int;
  mutable timer : int; (* virtual time of the last protocol progress *)
  mutable rto_cur : int;
  mutable srtt : int; (* smoothed RTT, ns; 0 until the first sample *)
  mutable rttvar : int;
  mutable rtt_samples : int;
  mutable stall_rounds : int; (* consecutive zero-send RTO rounds *)
  mutable s_retransmits : int;
  mutable s_backpressure : int;
  mutable s_ack_drops : int;
}

let create_sender api ~sim ~data_ep ~ack_ep ?(config = default_config) () =
  validate config;
  post_up_to api ack_ep (config.window + 2);
  let pool = Queue.create () in
  for _ = 1 to config.window + 2 do
    Queue.push (ok (Api.allocate_buffer api)) pool
  done;
  let s =
    {
      s_api = api;
      sim;
      cfg = config;
      data_ep;
      ack_ep;
      pool;
      inflight = Queue.create ();
      next_seq = 1;
      s_acked = 0;
      timer = Engine.now sim;
      rto_cur = config.rto_ns;
      srtt = 0;
      rttvar = 0;
      rtt_samples = 0;
      stall_rounds = 0;
      s_retransmits = 0;
      s_backpressure = 0;
      s_ack_drops = 0;
    }
  in
  register_probes api ~ep:data_ep
    [
      ("retransmits", fun () -> s.s_retransmits);
      ("acked", fun () -> s.s_acked);
      ("inflight", fun () -> Queue.length s.inflight);
      ("rto_ns", fun () -> s.rto_cur);
      ("srtt_ns", fun () -> s.srtt);
      ("rttvar_ns", fun () -> s.rttvar);
      ("backpressure", fun () -> s.s_backpressure);
      ("ack_drops", fun () -> s.s_ack_drops);
    ];
  s

(* RFC 6298-style estimator in integer nanoseconds:
   RTTVAR <- 3/4 RTTVAR + 1/4 |SRTT - R|, SRTT <- 7/8 SRTT + 1/8 R. *)
let rtt_sample s r =
  if r >= 0 then begin
    if s.rtt_samples = 0 then begin
      s.srtt <- r;
      s.rttvar <- r / 2
    end
    else begin
      s.rttvar <- ((3 * s.rttvar) + abs (s.srtt - r)) / 4;
      s.srtt <- ((7 * s.srtt) + r) / 8
    end;
    s.rtt_samples <- s.rtt_samples + 1
  end

(* SRTT + 4*RTTVAR, clamped between the configured static value (now a
   floor) and the backoff cap; the static value alone until measured. *)
let computed_rto s =
  if s.rtt_samples = 0 then s.cfg.rto_ns
  else min s.cfg.max_rto_ns (max s.cfg.rto_ns (s.srtt + (4 * s.rttvar)))

let reclaim_into_pool s =
  let rec loop () =
    match Api.reclaim s.s_api s.data_ep with
    | Some buf ->
        Queue.push buf s.pool;
        loop ()
    | None -> ()
  in
  loop ()

let apply_sack s ~cum sack =
  if sack <> 0L then
    Queue.iter
      (fun p ->
        if (not p.sacked) && p.seq > cum && p.seq <= cum + sack_width then
          if Int64.logand sack (Int64.shift_left 1L (p.seq - cum - 1)) <> 0L
          then p.sacked <- true)
      s.inflight

let absorb_acks s =
  let progress = ref false in
  let sampled = ref false in
  let rec loop () =
    match Api.receive s.s_api s.ack_ep with
    | None -> ()
    | Some buf ->
        let b = Api.read_payload s.s_api buf ack_bytes in
        let cum = Int32.to_int (Bytes.get_int32_le b 0) in
        let sack = Bytes.get_int64_le b 4 in
        (match Api.post_receive s.s_api s.ack_ep buf with
        | Ok () -> ()
        | Error _ -> Api.free_buffer s.s_api buf);
        if cum > s.s_acked then begin
          s.s_acked <- cum;
          progress := true
        end;
        (* SACK bits are relative to this ack's own cumulative value and
           stay truthful even when the ack is stale: the receiver never
           gives a buffered frame back to the wire. *)
        if s.cfg.mode = Selective_repeat then apply_sack s ~cum sack;
        loop ()
  in
  loop ();
  s.s_ack_drops <- s.s_ack_drops + Api.drops_read_and_reset s.s_api s.ack_ep;
  if !progress then begin
    let now = Engine.now s.sim in
    while
      (not (Queue.is_empty s.inflight))
      && (Queue.peek s.inflight).seq <= s.s_acked
    do
      let p = Queue.pop s.inflight in
      (* Karn's rule; skip SACK-held frames too — their ack was issued
         long before the cumulative counter finally swept past them. *)
      if (not p.retransmitted) && not p.sacked then begin
        rtt_sample s (now - p.sent_at);
        sampled := true
      end
    done;
    (* RFC 6298 §5.7: a backed-off RTO stands until a frame is acked
       without retransmission; recomputing from a stale (or absent)
       estimate here would undo the backoff and re-trigger the storm. *)
    if !sampled then s.rto_cur <- computed_rto s;
    s.timer <- now;
    s.stall_rounds <- 0
  end

(* Take a transmit buffer, waiting (bounded) for the engine to hand back
   one of ours; [None] only if none came back within the spin budget. *)
let take_buffer s =
  let rec wait spins =
    reclaim_into_pool s;
    match Queue.take_opt s.pool with
    | Some buf -> Some buf
    | None ->
        if spins > 100_000 then None
        else begin
          Mem_port.instr (Api.port s.s_api) s.cfg.spin_ns;
          wait (spins + 1)
        end
  in
  wait 0

(* Hand one frame to the transport. [`Backpressure] means it never
   reached the wire this attempt — transmit pool starved or the endpoint
   ring momentarily full — so the caller must not account a
   (re)transmission; the protocol simply retries on a later round.
   Each traversal of the wire is a distinct stamped message, so the
   Frame_tx event records the seq ↔ mid correlation (retransmissions of
   one seq carry different mids). *)
let transmit ?(re = false) s ~seq payload =
  match take_buffer s with
  | None ->
      s.s_backpressure <- s.s_backpressure + 1;
      `Backpressure
  | Some buf -> (
      encode_frame s.s_api buf ~seq payload;
      match Api.send s.s_api s.data_ep buf with
      | Ok () ->
          s.stall_rounds <- 0;
          emit s.s_api (fun () ->
              let addr = Api.address s.s_api s.data_ep in
              Flipc_obs.Event.Frame_tx
                {
                  node = Address.node addr;
                  ep = Address.endpoint addr;
                  seq;
                  mid = Api.last_msg_id s.s_api;
                  retransmit = re;
                });
          `Sent
      | Error _ ->
          Queue.push buf s.pool;
          s.s_backpressure <- s.s_backpressure + 1;
          `Backpressure)

let check_retransmit s =
  let now = Engine.now s.sim in
  if (not (Queue.is_empty s.inflight)) && now - s.timer >= s.rto_cur then
    if (Queue.peek s.inflight).retries >= s.cfg.max_retries then Error `Timeout
    else begin
      (* Selective repeat resends only the holes (frames the receiver
         has not reported holding); go-back-N resends the whole window. *)
      let sent_any = ref false in
      let blocked = ref false in
      Queue.iter
        (fun p ->
          if
            (not !blocked)
            && not (s.cfg.mode = Selective_repeat && p.sacked)
          then
            match transmit ~re:true s ~seq:p.seq p.payload with
            | `Sent ->
                sent_any := true;
                p.retries <- p.retries + 1;
                p.retransmitted <- true;
                s.s_retransmits <- s.s_retransmits + 1
            | `Backpressure -> blocked := true)
        s.inflight;
      if !sent_any then begin
        s.rto_cur <- min (s.rto_cur * 2) s.cfg.max_rto_ns;
        s.timer <- Engine.now s.sim;
        s.stall_rounds <- 0;
        Ok ()
      end
      else if !blocked then begin
        (* Nothing reached the wire: backpressure, not peer silence.
           Retry on the next pump; only give up once the transport has
           refused max_retries consecutive rounds — the engine has
           genuinely stopped draining our rings. *)
        s.stall_rounds <- s.stall_rounds + 1;
        if s.stall_rounds > s.cfg.max_retries then Error `Timeout else Ok ()
      end
      else begin
        (* Every outstanding frame is SACK-held by the receiver, yet the
           cumulative counter has not moved for a whole RTO. The ack that
           would have advanced it is evidently lost, and since we are not
           sending anything, no duplicate will ever provoke a re-ack:
           waiting longer deadlocks the tail of the stream. SACK state is
           advisory — treat it as stale and let the next expiry resend. *)
        Queue.iter (fun p -> p.sacked <- false) s.inflight;
        s.timer <- now;
        Ok ()
      end
    end
  else Ok ()

let pump s =
  absorb_acks s;
  check_retransmit s

let send_deadline s ?deadline payload =
  if Bytes.length payload > capacity s.s_api then
    invalid_arg "Retrans.send: payload exceeds channel capacity";
  let expired () =
    match deadline with None -> false | Some d -> Engine.now s.sim >= d
  in
  let rec wait_window () =
    match pump s with
    | Error `Timeout -> Error `Timeout
    | Ok () ->
        if Queue.length s.inflight < s.cfg.window then Ok ()
        else if expired () then Error `Timeout
        else begin
          Mem_port.instr (Api.port s.s_api) s.cfg.spin_ns;
          wait_window ()
        end
  in
  match wait_window () with
  | Error `Timeout -> Error `Timeout
  | Ok () ->
      let seq = s.next_seq in
      let copy = Bytes.copy payload in
      if Queue.is_empty s.inflight then begin
        s.timer <- Engine.now s.sim;
        if s.rtt_samples > 0 then s.rto_cur <- computed_rto s
      end;
      let rec xmit stalls =
        match transmit s ~seq copy with
        | `Sent ->
            s.next_seq <- seq + 1;
            Queue.push
              {
                seq;
                payload = copy;
                retries = 0;
                sacked = false;
                sent_at = Engine.now s.sim;
                retransmitted = false;
              }
              s.inflight;
            Ok ()
        | `Backpressure -> (
            if stalls >= s.cfg.max_retries || expired () then Error `Timeout
            else
              match pump s with
              | Error `Timeout -> Error `Timeout
              | Ok () ->
                  Mem_port.instr (Api.port s.s_api) s.cfg.spin_ns;
                  xmit (stalls + 1))
      in
      xmit 0

let send s payload = send_deadline s payload

let flush_deadline s ~deadline =
  let rec loop () =
    if Queue.is_empty s.inflight then Ok ()
    else if Engine.now s.sim > deadline then Error `Timeout
    else
      match pump s with
      | Error `Timeout -> Error `Timeout
      | Ok () ->
          Mem_port.instr (Api.port s.s_api) s.cfg.spin_ns;
          loop ()
  in
  loop ()

let flush s ~timeout_ns = flush_deadline s ~deadline:(Engine.now s.sim + timeout_ns)

let in_flight s = Queue.length s.inflight
let acked s = s.s_acked
let retransmits s = s.s_retransmits
let ack_drops s = s.s_ack_drops
let backpressure s = s.s_backpressure
let srtt_ns s = s.srtt
let rttvar_ns s = s.rttvar
let rto_current_ns s = s.rto_cur

type receiver = {
  r_api : Api.t;
  r_sim : Engine.t;
  r_cfg : config;
  r_data_ep : Api.endpoint;
  r_ack_ep : Api.endpoint;
  ooo : (int, Bytes.t * int) Hashtbl.t;
      (* out-of-order (frame, msg id) held for SACK *)
  mutable expected : int; (* highest in-order sequence accepted *)
  mutable pending_ack : int;
  mutable anomalies : int; (* duplicates/gaps since the last ack *)
  mutable last_ack_at : int;
  mutable r_delivered : int;
  mutable r_duplicates : int;
  mutable r_reordered : int;
  mutable r_ooo_buffered : int; (* total frames ever held out of order *)
  mutable r_acks_sent : int;
  mutable r_reacks_suppressed : int;
  mutable r_drops : int;
}

let create_receiver api ~sim ~data_ep ~ack_ep ?(config = default_config) () =
  validate config;
  post_up_to api data_ep (config.window + 2);
  let r =
    {
      r_api = api;
      r_sim = sim;
      r_cfg = config;
      r_data_ep = data_ep;
      r_ack_ep = ack_ep;
      ooo = Hashtbl.create 16;
      expected = 0;
      pending_ack = 0;
      anomalies = 0;
      last_ack_at = Engine.now sim;
      r_delivered = 0;
      r_duplicates = 0;
      r_reordered = 0;
      r_ooo_buffered = 0;
      r_acks_sent = 0;
      r_reacks_suppressed = 0;
      r_drops = 0;
    }
  in
  register_probes api ~ep:data_ep
    [
      ("delivered", fun () -> r.r_delivered);
      ("duplicates", fun () -> r.r_duplicates);
      ("reordered", fun () -> r.r_reordered);
      ("acks_sent", fun () -> r.r_acks_sent);
      ("ooo_buffered", fun () -> r.r_ooo_buffered);
      ("ooo_held", fun () -> Hashtbl.length r.ooo);
      ("reacks_suppressed", fun () -> r.r_reacks_suppressed);
      ("transport_drops", fun () -> r.r_drops);
    ];
  r

let sack_bitmap r =
  let bits = ref 0L in
  Hashtbl.iter
    (fun seq _ ->
      let off = seq - r.expected - 1 in
      if off >= 0 && off < sack_width then
        bits := Int64.logor !bits (Int64.shift_left 1L off))
    r.ooo;
  !bits

let popcount64 bits =
  let n = ref 0 in
  for i = 0 to 63 do
    if Int64.logand bits (Int64.shift_left 1L i) <> 0L then incr n
  done;
  !n

let send_ack r =
  let buf =
    match Api.reclaim r.r_api r.r_ack_ep with
    | Some buf -> Some buf
    | None -> (
        match Api.allocate_buffer r.r_api with
        | Ok buf -> Some buf
        | Error _ -> None)
  in
  match buf with
  | None -> () (* pool exhausted; a later ack supersedes this one *)
  | Some buf -> (
      let b = Bytes.create ack_bytes in
      let sack = sack_bitmap r in
      Bytes.set_int32_le b 0 (Int32.of_int r.expected);
      Bytes.set_int64_le b 4 sack;
      Api.write_payload r.r_api buf b;
      match Api.send r.r_api r.r_ack_ep buf with
      | Ok () ->
          r.r_acks_sent <- r.r_acks_sent + 1;
          r.pending_ack <- 0;
          r.anomalies <- 0;
          r.last_ack_at <- Engine.now r.r_sim;
          emit r.r_api (fun () ->
              let addr = Api.address r.r_api r.r_data_ep in
              Flipc_obs.Event.Ack_tx
                {
                  node = Address.node addr;
                  ep = Address.endpoint addr;
                  cum = r.expected;
                  sacked = popcount64 sack;
                })
      | Error _ -> Api.free_buffer r.r_api buf)

(* A duplicate or unbufferable gap carries no new acknowledgement state;
   re-ack at most once per [ack_every] such anomalies, or once per
   static RTO when the last ack is old enough that it may have been
   lost. Anything more is the ack storm the transport then drops. *)
let maybe_reack r =
  r.anomalies <- r.anomalies + 1;
  if
    r.anomalies >= r.r_cfg.ack_every
    || Engine.now r.r_sim - r.last_ack_at >= r.r_cfg.rto_ns
  then send_ack r
  else r.r_reacks_suppressed <- r.r_reacks_suppressed + 1

let repost r buf =
  match Api.post_receive r.r_api r.r_data_ep buf with
  | Ok () -> ()
  | Error _ -> Api.free_buffer r.r_api buf

let deliver r ~seq ~mid payload =
  r.expected <- seq;
  r.r_delivered <- r.r_delivered + 1;
  emit r.r_api (fun () ->
      let addr = Api.address r.r_api r.r_data_ep in
      Flipc_obs.Event.Frame_deliver
        { node = Address.node addr; ep = Address.endpoint addr; seq; mid });
  r.pending_ack <- r.pending_ack + 1;
  if r.pending_ack >= r.r_cfg.ack_every then send_ack r;
  Some payload

let rec recv r =
  r.r_drops <- r.r_drops + Api.drops_read_and_reset r.r_api r.r_data_ep;
  match Hashtbl.find_opt r.ooo (r.expected + 1) with
  | Some (payload, mid) ->
      (* The hole below a buffered frame closed earlier; drain without
         touching the wire. *)
      Hashtbl.remove r.ooo (r.expected + 1);
      deliver r ~seq:(r.expected + 1) ~mid payload
  | None -> (
      match Api.receive r.r_api r.r_data_ep with
      | None -> None
      | Some buf ->
          let header = Api.read_payload r.r_api buf header_bytes in
          let seq = Int32.to_int (Bytes.get_int32_le header 0) in
          let len = Int32.to_int (Bytes.get_int32_le header 4) in
          if seq < 1 || len < 0 || len > capacity r.r_api then begin
            (* Not a retransmission frame; skip it. *)
            repost r buf;
            recv r
          end
          else if seq = r.expected + 1 then begin
            let payload = Api.read_payload r.r_api buf ~at:header_bytes len in
            let mid = Api.last_recv_msg_id r.r_api in
            repost r buf;
            deliver r ~seq ~mid payload
          end
          else if seq <= r.expected then begin
            repost r buf;
            r.r_duplicates <- r.r_duplicates + 1;
            maybe_reack r;
            recv r
          end
          else if
            r.r_cfg.mode = Selective_repeat
            && seq <= r.expected + sack_width
            && not (Hashtbl.mem r.ooo seq)
          then begin
            (* Buffer the out-of-order frame instead of discarding it,
               and ack immediately: the new SACK bit is exactly what
               stops the sender from retransmitting this frame. *)
            let payload = Api.read_payload r.r_api buf ~at:header_bytes len in
            let mid = Api.last_recv_msg_id r.r_api in
            repost r buf;
            Hashtbl.replace r.ooo seq (payload, mid);
            r.r_reordered <- r.r_reordered + 1;
            r.r_ooo_buffered <- r.r_ooo_buffered + 1;
            send_ack r;
            recv r
          end
          else begin
            repost r buf;
            if r.r_cfg.mode = Selective_repeat && Hashtbl.mem r.ooo seq then
              r.r_duplicates <- r.r_duplicates + 1
            else r.r_reordered <- r.r_reordered + 1;
            maybe_reack r;
            recv r
          end)

let delivered r = r.r_delivered
let duplicates r = r.r_duplicates
let reordered r = r.r_reordered
let acks_sent r = r.r_acks_sent
let reacks_suppressed r = r.r_reacks_suppressed
let ooo_buffered r = r.r_ooo_buffered
let transport_drops r = r.r_drops
