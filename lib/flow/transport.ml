type error =
  [ `Timeout | `Closed | `No_buffer | `Peer_dead | `Api of Flipc.Api.error ]

let error_to_string = function
  | `Timeout -> "deadline passed"
  | `Closed -> "connection closed"
  | `No_buffer -> "transient backpressure"
  | `Peer_dead -> "peer unreachable (retry budget exhausted)"
  | `Api e -> "transport: " ^ Flipc.Api.error_to_string e

module type S = sig
  type t

  val capacity : t -> int
  val now : t -> Flipc_sim.Vtime.t
  val idle : t -> unit
  val pump : t -> (unit, error) result
  val try_send : t -> Bytes.t -> (unit, error) result
  val send : t -> deadline:Flipc_sim.Vtime.t -> Bytes.t -> (unit, error) result
  val recv : t -> (Bytes.t option, error) result

  val recv_deadline :
    t -> deadline:Flipc_sim.Vtime.t -> (Bytes.t, error) result

  val close : t -> unit
end

module type CORE = sig
  type t

  val now : t -> Flipc_sim.Vtime.t
  val idle : t -> unit
  val pump : t -> (unit, error) result
  val try_send : t -> Bytes.t -> (unit, error) result
  val recv : t -> (Bytes.t option, error) result
end

module Defaults (C : CORE) = struct
  let send t ~deadline payload =
    let rec loop () =
      match C.try_send t payload with
      | Ok () -> Ok ()
      | Error `No_buffer ->
          if C.now t >= deadline then Error `Timeout
          else begin
            C.idle t;
            match C.pump t with Error e -> Error e | Ok () -> loop ()
          end
      | Error e -> Error e
    in
    loop ()

  let recv_deadline t ~deadline =
    let rec loop () =
      match C.recv t with
      | Ok (Some payload) -> Ok payload
      | Ok None ->
          if C.now t >= deadline then Error `Timeout
          else begin
            C.idle t;
            loop ()
          end
      | Error e -> Error e
    in
    loop ()
end

module Group (T : S) = struct
  type t = {
    mutable members : T.t array;
    mutable next : int;
    sem : Flipc_rt.Rt_semaphore.t option;
  }

  let create ?semaphore () = { members = [||]; next = 0; sem = semaphore }
  let semaphore t = t.sem

  let add t conn =
    t.members <- Array.append t.members [| conn |];
    (* Close the lost-wakeup window (same rule as
       [Endpoint_group.add]): traffic deposited on [conn] before it
       joined already consumed its post while no scan could surface
       it. One spurious post makes every blocked waiter rescan; the
       Mesa-style wait loop absorbs it when the scan comes up empty. *)
    match t.sem with
    | Some sem -> Flipc_rt.Rt_semaphore.post sem
    | None -> ()

  let length t = Array.length t.members

  let remove t conn =
    let removed = ref (-1) in
    Array.iteri (fun i c -> if c == conn then removed := i) t.members;
    match !removed with
    | -1 -> ()
    | i ->
        let n = Array.length t.members in
        t.members <-
          Array.init (n - 1) (fun j ->
              if j < i then t.members.(j) else t.members.(j + 1));
        (* Keep the cursor on the member that would have been scanned
           next: slots above the removed one shift down by one, and
           removing the cursor's own slot leaves its successor in
           place. Clamp when the tail member was both cursor and
           victim. *)
        if t.next > i then t.next <- t.next - 1;
        if t.next >= Array.length t.members then t.next <- 0

  let recv_any t =
    let n = Array.length t.members in
    if n = 0 then Ok None
    else begin
      let rec scan k =
        if k = n then Ok None
        else begin
          let i = (t.next + k) mod n in
          let conn = t.members.(i) in
          match T.recv conn with
          | Ok (Some payload) ->
              t.next <- (i + 1) mod n;
              Ok (Some (conn, payload))
          | Ok None -> scan (k + 1)
          | Error e -> Error e
        end
      in
      scan 0
    end

  let recv_any_deadline t ~deadline =
    let rec loop () =
      match recv_any t with
      | Ok (Some hit) -> Ok hit
      | Error e -> Error e
      | Ok None ->
          if Array.length t.members = 0 then Error `Closed
          else begin
            let pacer = t.members.(0) in
            if T.now pacer >= deadline then Error `Timeout
            else begin
              T.idle pacer;
              loop ()
            end
          end
    in
    loop ()

  (* Blocking receive-any over the rt semaphore: instead of burning
     idle polls, the calling scheduler thread sleeps until an engine
     posts the shared semaphore (every member's receive endpoint must
     be allocated with it — [Channel_transport.create ?semaphore]).
     Wakeups are hints, not tokens: a post can predate membership or
     belong to a message another consumer already took, so each wake
     triggers a full fair rescan and an empty scan simply waits
     again. *)
  let recv_any_wait t thr =
    match t.sem with
    | None -> invalid_arg "Transport.Group.recv_any_wait: no group semaphore"
    | Some sem ->
        let rec loop () =
          match recv_any t with
          | Ok (Some hit) -> Ok hit
          | Error e -> Error e
          | Ok None ->
              Flipc_rt.Rt_semaphore.wait sem thr;
              loop ()
        in
        loop ()
end
