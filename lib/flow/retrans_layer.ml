(* Frames on the base transport carry a one-byte tag:
     tag 0: data [0x00 | seq int32 LE | application payload]
     tag 1: ack  [0x01 | cum int32 LE | SACK bitmap int64 LE]
   Sequence numbers start at 1 per direction. Both acknowledgement
   fields are monotone descriptions of receiver state (the receiver
   never gives a frame back), so any later ack supersedes a lost one. *)

type config = {
  window : int;
  rto_ns : int;
  max_rto_ns : int;
  ack_every : int;
  max_retries : int;
}

let default_config =
  {
    window = 8;
    rto_ns = 1_000_000;
    max_rto_ns = 8_000_000;
    ack_every = 1;
    max_retries = 30;
  }

let sack_width = 64
let tag_data = '\000'
let tag_ack = '\001'
let data_header = 5
let ack_bytes = 13

let validate c =
  if c.window < 1 then invalid_arg "Retrans_layer: window < 1";
  if c.window > sack_width then
    invalid_arg "Retrans_layer: window exceeds SACK bitmap width";
  if c.rto_ns < 1 || c.max_rto_ns < c.rto_ns then
    invalid_arg "Retrans_layer: bad timeout bounds";
  if c.ack_every < 1 then invalid_arg "Retrans_layer: ack_every < 1";
  if c.max_retries < 1 then invalid_arg "Retrans_layer: max_retries < 1"

module Make (T : Transport.S) = struct
  type pending = {
    seq : int;
    payload : Bytes.t;
    mutable retries : int;
    mutable sacked : bool;
  }

  type t = {
    base : T.t;
    cfg : config;
    (* sender direction *)
    inflight : pending Queue.t;
    mutable next_seq : int;
    mutable s_acked : int;
    mutable timer : int; (* virtual time of the last protocol progress *)
    mutable rto_cur : int;
    mutable s_retransmits : int;
    (* receiver direction *)
    rxq : Bytes.t Queue.t; (* in-order, ready for the application *)
    ooo : (int, Bytes.t) Hashtbl.t;
    mutable expected : int;
    mutable pending_ack : int;
    mutable anomalies : int;
    mutable last_ack_at : int;
    mutable ack_due : bool; (* an ack hit backpressure; retry *)
    mutable r_delivered : int;
    mutable r_duplicates : int;
    mutable closed : bool;
  }

  let create base ?(config = default_config) () =
    validate config;
    {
      base;
      cfg = config;
      inflight = Queue.create ();
      next_seq = 1;
      s_acked = 0;
      timer = T.now base;
      rto_cur = config.rto_ns;
      s_retransmits = 0;
      rxq = Queue.create ();
      ooo = Hashtbl.create 16;
      expected = 0;
      pending_ack = 0;
      anomalies = 0;
      last_ack_at = T.now base;
      ack_due = false;
      r_delivered = 0;
      r_duplicates = 0;
      closed = false;
    }

  let capacity t = T.capacity t.base - data_header
  let now t = T.now t.base
  let idle t = T.idle t.base

  (* Bail out of the pump loop on a terminal base-transport error. *)
  exception Terminal of Transport.error

  let ( !! ) = function Ok v -> v | Error e -> raise (Terminal e)

  let sack_bitmap t =
    let bits = ref 0L in
    Hashtbl.iter
      (fun seq _ ->
        let off = seq - t.expected - 1 in
        if off >= 0 && off < sack_width then
          bits := Int64.logor !bits (Int64.shift_left 1L off))
      t.ooo;
    !bits

  let send_ack t =
    let b = Bytes.create ack_bytes in
    Bytes.set b 0 tag_ack;
    Bytes.set_int32_le b 1 (Int32.of_int t.expected);
    Bytes.set_int64_le b 5 (sack_bitmap t);
    match T.try_send t.base b with
    | Ok () ->
        t.pending_ack <- 0;
        t.anomalies <- 0;
        t.ack_due <- false;
        t.last_ack_at <- now t
    | Error `No_buffer ->
        (* Base refused transiently; any later ack supersedes this
           one, so just flag the debt and retry from [pump]. *)
        t.ack_due <- true
    | Error e -> raise (Terminal e)

  (* A duplicate or unbufferable frame carries no new state for us,
     but tells the sender its ack was likely lost; re-ack, rate
     limited per [ack_every] anomalies or one RTO of silence. *)
  let maybe_reack t =
    t.anomalies <- t.anomalies + 1;
    if t.anomalies >= t.cfg.ack_every || now t - t.last_ack_at >= t.cfg.rto_ns
    then send_ack t

  let apply_sack t ~cum sack =
    if sack <> 0L then
      Queue.iter
        (fun p ->
          if (not p.sacked) && p.seq > cum && p.seq <= cum + sack_width then
            if Int64.logand sack (Int64.shift_left 1L (p.seq - cum - 1)) <> 0L
            then p.sacked <- true)
        t.inflight

  let absorb_ack t frame =
    if Bytes.length frame >= ack_bytes then begin
      let cum = Int32.to_int (Bytes.get_int32_le frame 1) in
      let sack = Bytes.get_int64_le frame 5 in
      apply_sack t ~cum sack;
      if cum > t.s_acked then begin
        t.s_acked <- cum;
        while
          (not (Queue.is_empty t.inflight))
          && (Queue.peek t.inflight).seq <= t.s_acked
        do
          ignore (Queue.pop t.inflight)
        done;
        (* Cumulative progress: restart the timer and let the backoff
           decay back to the configured base. *)
        t.timer <- now t;
        t.rto_cur <- t.cfg.rto_ns
      end
    end

  let deliver t ~seq payload =
    t.expected <- seq;
    t.r_delivered <- t.r_delivered + 1;
    Queue.push payload t.rxq;
    (* Close any hole the out-of-order buffer already covers. *)
    let rec chain () =
      match Hashtbl.find_opt t.ooo (t.expected + 1) with
      | None -> ()
      | Some p ->
          Hashtbl.remove t.ooo (t.expected + 1);
          t.expected <- t.expected + 1;
          t.r_delivered <- t.r_delivered + 1;
          Queue.push p t.rxq;
          chain ()
    in
    chain ();
    t.pending_ack <- t.pending_ack + 1;
    if t.pending_ack >= t.cfg.ack_every then send_ack t

  let absorb_data t frame =
    if Bytes.length frame >= data_header then begin
      let seq = Int32.to_int (Bytes.get_int32_le frame 1) in
      let payload =
        Bytes.sub frame data_header (Bytes.length frame - data_header)
      in
      if seq < 1 then () (* not a frame of ours *)
      else if seq = t.expected + 1 then deliver t ~seq payload
      else if seq <= t.expected || Hashtbl.mem t.ooo seq then begin
        t.r_duplicates <- t.r_duplicates + 1;
        maybe_reack t
      end
      else if seq <= t.expected + sack_width then begin
        (* Buffer out of order and ack immediately: the fresh SACK bit
           is what stops the sender retransmitting this frame. *)
        Hashtbl.replace t.ooo seq payload;
        send_ack t
      end
      else maybe_reack t (* beyond the bitmap: unbufferable *)
    end

  let check_retransmit t =
    if
      (not (Queue.is_empty t.inflight))
      && now t - t.timer >= t.rto_cur
    then begin
      if (Queue.peek t.inflight).retries >= t.cfg.max_retries then
        raise (Terminal `Peer_dead);
      let sent_any = ref false in
      let blocked = ref false in
      let all_sacked = ref true in
      Queue.iter
        (fun p ->
          if not p.sacked then begin
            all_sacked := false;
            if not !blocked then begin
              let frame = Bytes.create (data_header + Bytes.length p.payload) in
              Bytes.set frame 0 tag_data;
              Bytes.set_int32_le frame 1 (Int32.of_int p.seq);
              Bytes.blit p.payload 0 frame data_header
                (Bytes.length p.payload);
              match T.try_send t.base frame with
              | Ok () ->
                  sent_any := true;
                  p.retries <- p.retries + 1;
                  t.s_retransmits <- t.s_retransmits + 1
              | Error `No_buffer -> blocked := true
              | Error e -> raise (Terminal e)
            end
          end)
        t.inflight;
      if !sent_any then begin
        t.rto_cur <- min (t.rto_cur * 2) t.cfg.max_rto_ns;
        t.timer <- now t
      end
      else if !all_sacked then begin
        (* Every hole is SACK-held yet the cumulative counter has not
           moved for a whole RTO: the ack that would advance it is
           evidently lost, and nothing we send will provoke a re-ack.
           SACK state is advisory — treat it as stale and resend on
           the next expiry. *)
        Queue.iter (fun p -> p.sacked <- false) t.inflight;
        t.timer <- now t
      end
      (* else: pure local backpressure — leave the timer armed and
         retry on the next pump; a deadline-bounded caller converts a
         persistent stall into [`Timeout]. *)
    end

  let pump t =
    if t.closed then Error `Closed
    else begin
      try
        !!(T.pump t.base);
        let rec drain () =
          match !!(T.recv t.base) with
          | None -> ()
          | Some frame ->
              (if Bytes.length frame >= 1 then
                 match Bytes.get frame 0 with
                 | c when c = tag_data -> absorb_data t frame
                 | c when c = tag_ack -> absorb_ack t frame
                 | _ -> () (* unknown tag: skip *));
              drain ()
        in
        drain ();
        if t.ack_due then send_ack t;
        check_retransmit t;
        Ok ()
      with Terminal e -> Error e
    end

  let try_send t payload =
    if Bytes.length payload > capacity t then
      invalid_arg "Retrans_layer.try_send: payload exceeds capacity";
    match pump t with
    | Error e -> Error e
    | Ok () ->
        if Queue.length t.inflight >= t.cfg.window then Error `No_buffer
        else begin
          let seq = t.next_seq in
          let copy = Bytes.copy payload in
          let frame = Bytes.create (data_header + Bytes.length copy) in
          Bytes.set frame 0 tag_data;
          Bytes.set_int32_le frame 1 (Int32.of_int seq);
          Bytes.blit copy 0 frame data_header (Bytes.length copy);
          match T.try_send t.base frame with
          | Ok () ->
              if Queue.is_empty t.inflight then t.timer <- now t;
              Queue.push
                { seq; payload = copy; retries = 0; sacked = false }
                t.inflight;
              t.next_seq <- seq + 1;
              Ok ()
          | Error e -> Error e
        end

  let recv t =
    match pump t with
    | Error e -> Error e
    | Ok () -> Ok (Queue.take_opt t.rxq)

  include Transport.Defaults (struct
    type nonrec t = t

    let now = now
    let idle = idle
    let pump = pump
    let try_send = try_send
    let recv = recv
  end)

  let flush t ~deadline =
    let rec loop () =
      match pump t with
      | Error e -> Error e
      | Ok () ->
          if Queue.is_empty t.inflight then Ok ()
          else if now t > deadline then Error `Timeout
          else begin
            idle t;
            loop ()
          end
    in
    loop ()

  let close t =
    t.closed <- true;
    T.close t.base

  let in_flight t = Queue.length t.inflight
  let acked t = t.s_acked
  let delivered t = t.r_delivered
  let duplicates t = t.r_duplicates
  let retransmits t = t.s_retransmits
  let ooo_held t = Hashtbl.length t.ooo
end
