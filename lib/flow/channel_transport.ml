module Api = Flipc.Api
module Channel = Flipc.Channel
module Mem_port = Flipc_memsim.Mem_port

type t = {
  api : Api.t;
  rx : Channel.rx;
  pool : int option; (* tx pool size, consumed at [connect] *)
  mutable tx : Channel.tx option;
  mutable closed : bool;
}

let chan_err : Channel.error -> Transport.error = function
  | `No_buffer -> `No_buffer
  | #Api.error as e -> `Api e

let create api ?pool ?depth ?semaphore () =
  match Channel.create_rx api ?depth ?semaphore () with
  | Error e -> Error (chan_err e)
  | Ok rx -> Ok { api; rx; pool; tx = None; closed = false }

let address t = Channel.address t.rx

let connect t dest =
  if t.closed || t.tx <> None then Error `Closed
  else
    match Channel.create_tx t.api ~dest ?pool:t.pool () with
    | Error e -> Error (chan_err e)
    | Ok tx ->
        t.tx <- Some tx;
        Ok ()

let capacity t = Channel.capacity t.api
let now t = Api.now t.api
let idle t = Mem_port.instr (Api.port t.api) 10
let pump t = if t.closed then Error `Closed else Ok ()

let try_send t payload =
  if t.closed then Error `Closed
  else
    match t.tx with
    | None -> Error `Closed
    | Some tx -> (
        match Channel.try_send tx payload with
        | Ok () -> Ok ()
        | Error `No_buffer | Error `Full ->
            (* Transmit pool starved or send ring momentarily full:
               transient backpressure, uniformly [`No_buffer]. *)
            Error `No_buffer
        | Error (#Api.error as e) -> Error (`Api e))

let recv t =
  if t.closed then Error `Closed
  else
    match Channel.recv t.rx with
    | Some payload -> Ok (Some payload)
    | None -> Ok None

include Transport.Defaults (struct
  type nonrec t = t

  let now = now
  let idle = idle
  let pump = pump
  let try_send = try_send
  let recv = recv
end)

let close t = t.closed <- true
let drops t = Channel.drops t.rx
let corrupt_frames t = Channel.corrupt_frames t.rx

let sent t = match t.tx with Some tx -> Channel.sent tx | None -> 0
let received t = Channel.received t.rx
