(** Credit-window flow control layered above FLIPC.

    FLIPC's optimistic transport discards messages that find no posted
    receive buffer; applications that cannot statically provision
    ({!Provision}) run a library like this one between themselves and
    FLIPC — the structure the paper prescribes ("flow control to avoid
    discarded messages can be provided either by applications or by
    libraries designed to fit between applications and FLIPC"), and the
    same window scheme PAM's active-message facility uses.

    A flow-controlled link uses two endpoint pairs: a data channel
    (sender -> receiver) and a credit channel (receiver -> sender). The
    receiver posts [window] buffers and returns credits as the application
    consumes; the sender never has more than [window] messages in flight,
    so the transport never discards. Credits are batched ([grant_every])
    to amortize the reverse traffic, and each credit message carries the
    receiver's {e cumulative} consumed count in its payload — so a credit
    message the transport discards is recovered by any later one instead
    of permanently shrinking the window. The sender posts enough credit
    receive buffers for every grant that can be simultaneously in flight
    ([window / grant_every], plus slack) and tallies residual discards
    through the endpoint drop counter ({!credit_drops}). *)

type sender
type receiver

(** {1 Receiver} *)

(** [create_receiver api ~data_ep ~credit_ep ~window ()] allocates and
    posts [window] receive buffers on [data_ep] (a receive endpoint) and
    prepares to grant credits through [credit_ep] (a send endpoint already
    connected to the sender's credit receive endpoint).
    [grant_every] defaults to [max 1 (window / 2)]. *)
val create_receiver :
  Flipc.Api.t ->
  data_ep:Flipc.Api.endpoint ->
  credit_ep:Flipc.Api.endpoint ->
  window:int ->
  ?grant_every:int ->
  unit ->
  receiver

(** [recv r] polls for a delivered message; the caller consumes the
    payload and must then call [consumed]. *)
val recv : receiver -> Flipc.Api.buffer option

(** [consumed r buf] reposts the buffer and grants credit (batched). *)
val consumed : receiver -> Flipc.Api.buffer -> unit

val messages_received : receiver -> int

(** {1 Sender} *)

(** [create_sender api ~data_ep ~credit_recv_ep ~window ()] wraps a
    connected send endpoint. [credit_recv_ep] is a receive endpoint the
    peer's credit channel targets; credit buffers are posted here, sized
    for [window / grant_every] simultaneous grants plus slack.
    [grant_every] must match the receiver's batching (same default). *)
val create_sender :
  Flipc.Api.t ->
  data_ep:Flipc.Api.endpoint ->
  credit_recv_ep:Flipc.Api.endpoint ->
  window:int ->
  ?grant_every:int ->
  unit ->
  sender

(** [send s buf] transmits when a credit is available, polling for credit
    return if the window is exhausted. Never causes a transport discard.
    Spins forever if the peer never grants credit — prefer
    {!send_timeout} when that is possible. *)
val send : sender -> Flipc.Api.buffer -> unit

(** [send_deadline s ~deadline buf] is [send] with a bounded wait: it
    polls for credit until the virtual clock ({!Flipc.Api.now}) reaches
    [deadline] (absolute, virtual ns), then returns [`Timeout] instead
    of spinning forever. *)
val send_deadline :
  sender -> deadline:int -> Flipc.Api.buffer -> (unit, [ `Timeout ]) result

(** [send_timeout s buf] is the deprecated spin-count variant of
    {!send_deadline}: [max_spins] (default 100_000) legacy credit polls
    are converted to the equivalent virtual-time budget
    ([max_spins * 10 * instr_ns] from now), so the actual duration
    depends on the node's cost model. New code should state a deadline
    directly. *)
val send_timeout :
  sender -> ?max_spins:int -> Flipc.Api.buffer -> (unit, [ `Timeout ]) result

(** [try_send s buf] is [false] instead of blocking when no credit is
    available. *)
val try_send : sender -> Flipc.Api.buffer -> bool

val credits_available : sender -> int
val messages_sent : sender -> int

(** Credit messages the transport discarded at the sender's credit
    endpoint (no posted buffer). The cumulative encoding recovers the
    credits themselves; this counter records that it happened. *)
val credit_drops : sender -> int
