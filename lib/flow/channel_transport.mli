(** {!Flipc.Channel} as a {!Transport.S}: the on-machine base of every
    stack.

    A connection is a receive channel (created first, so its address can
    be exchanged through a mailbox or the name service) plus a send
    channel wired to the peer's address with {!connect}. Buffer
    management is the channel layer's: pooled transmit buffers, reposted
    receive buffers, 4-byte length framing — the "improved buffer
    management design" the paper calls for, now under any reliability
    layer stacked on top.

    Semantics are FLIPC's optimistic transport: a message that finds no
    posted receive buffer at the peer is discarded ({!drops} counts
    them); transient local exhaustion (transmit pool, send ring)
    surfaces as [`No_buffer] and is absorbed by the deadline-blocking
    operations. *)

type t

(** Satisfies {!Transport.S}. *)

val capacity : t -> int
val now : t -> Flipc_sim.Vtime.t
val idle : t -> unit
val pump : t -> (unit, Transport.error) result
val try_send : t -> Bytes.t -> (unit, Transport.error) result

val send :
  t -> deadline:Flipc_sim.Vtime.t -> Bytes.t -> (unit, Transport.error) result

val recv : t -> (Bytes.t option, Transport.error) result

val recv_deadline :
  t -> deadline:Flipc_sim.Vtime.t -> (Bytes.t, Transport.error) result

val close : t -> unit

(** {1 Construction} *)

(** [create api ()] allocates the receive half; the connection sends
    nothing (and reports [`Closed] from send operations) until
    {!connect}. [pool] sizes the transmit buffer pool, [depth] the
    posted receive queue (both default 4, as in {!Flipc.Channel}).
    [semaphore] attaches a real-time wakeup semaphore to the receive
    endpoint, making the connection eligible for a
    {!Transport.Group.recv_any_wait} group built on the same
    semaphore. *)
val create :
  Flipc.Api.t ->
  ?pool:int ->
  ?depth:int ->
  ?semaphore:Flipc_rt.Rt_semaphore.t ->
  unit ->
  (t, Transport.error) result

(** The receive half's address, to hand to the peer. *)
val address : t -> Flipc.Address.t

(** [connect t dest] wires the send half to the peer's receive address.
    [`Closed] if already connected or closed. *)
val connect : t -> Flipc.Address.t -> (unit, Transport.error) result

(** {1 Counters} *)

(** Transport discards at this side's receive endpoint since the last
    call (read-and-reset). *)
val drops : t -> int

(** Frames skipped for garbage length headers (cumulative). *)
val corrupt_frames : t -> int

val sent : t -> int
val received : t -> int
