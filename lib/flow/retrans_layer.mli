(** Exactly-once, in-order delivery as a functor over any
    {!Transport.S}.

    The recovery discipline of {!Retrans} — selective repeat with a
    SACK bitmap, cumulative acknowledgements, exponential RTO backoff
    — restructured as a stackable layer
    over a single duplex connection. [Retrans_layer (Channel_transport)]
    is the "Retrans-under-Channel" stack: exactly-once delivery with
    the channel layer's automatic buffer management underneath, no
    endpoint-pair plumbing in sight. Stacking over {!Window_layer}
    composes retransmission with credit flow control.

    Data and acknowledgement frames share the connection, distinguished
    by a one-byte tag ({!capacity} is the base's minus five: tag plus a
    4-byte sequence number). Both directions are independent instances
    of the protocol: each side keeps sender state (in-flight window,
    retransmission timer) and receiver state (expected sequence,
    out-of-order buffer).

    A send whose oldest in-flight frame exhausts [max_retries]
    retransmission rounds reports [`Peer_dead] — the peer is presumed
    unreachable — distinct from [`Timeout], which only ever means "your
    deadline passed". *)

type config = {
  window : int;  (** max unacknowledged messages in flight (<= 64) *)
  rto_ns : int;  (** initial retransmission timeout (virtual ns) *)
  max_rto_ns : int;  (** exponential-backoff cap *)
  ack_every : int;  (** acknowledge every n in-order deliveries *)
  max_retries : int;  (** retransmission rounds before [`Peer_dead] *)
}

(** [window = 8], [rto_ns = 1ms], [max_rto_ns = 8ms], [ack_every = 1],
    [max_retries = 30]. *)
val default_config : config

module Make (T : Transport.S) : sig
  type t

  (** Satisfies {!Transport.S}. *)

  val capacity : t -> int
  val now : t -> Flipc_sim.Vtime.t
  val idle : t -> unit

  (** Absorbs acknowledgements, delivers arriving data into the
      in-order queue, fires due retransmissions. [`Peer_dead] when the
      oldest in-flight frame has exhausted its retry budget. *)
  val pump : t -> (unit, Transport.error) result

  val try_send : t -> Bytes.t -> (unit, Transport.error) result

  val send :
    t ->
    deadline:Flipc_sim.Vtime.t ->
    Bytes.t ->
    (unit, Transport.error) result

  (** Exactly-once, in-order. *)
  val recv : t -> (Bytes.t option, Transport.error) result

  val recv_deadline :
    t -> deadline:Flipc_sim.Vtime.t -> (Bytes.t, Transport.error) result

  val close : t -> unit

  (** [create conn ()] wraps a connected base transport; both ends must
      be wrapped with the same [config]. *)
  val create : T.t -> ?config:config -> unit -> t

  (** [flush t ~deadline] pumps until every queued message is
      acknowledged or the virtual clock passes [deadline]. *)
  val flush :
    t -> deadline:Flipc_sim.Vtime.t -> (unit, Transport.error) result

  (** {1 Counters} *)

  val in_flight : t -> int

  (** Highest cumulative sequence acknowledged by the peer. *)
  val acked : t -> int

  (** In-order messages delivered to the application. *)
  val delivered : t -> int

  (** Frames discarded as already delivered or already buffered. *)
  val duplicates : t -> int

  (** Data frames retransmitted. *)
  val retransmits : t -> int

  (** Out-of-order frames currently buffered for selective repeat. *)
  val ooo_held : t -> int
end
