(* Frames on the base transport carry a one-byte tag:
     tag 0: data   [0x00 | application payload]
     tag 1: credit [0x01 | cumulative consumed count, int32 LE]
   Cumulative credit counts make credit loss self-healing, exactly as
   in the endpoint-pair {!Window} module. *)

let tag_data = '\000'
let tag_credit = '\001'
let credit_bytes = 5

module Make (T : Transport.S) = struct
  type t = {
    base : T.t;
    window : int;
    grant_every : int;
    rxq : Bytes.t Queue.t;
    mutable sent : int;
    mutable granted : int; (* peer's highest cumulative consumed count *)
    mutable consumed : int;
    mutable pending_grants : int;
    mutable credit_due : bool; (* a grant hit backpressure; retry *)
    mutable closed : bool;
  }

  let create base ~window ?grant_every () =
    if window < 1 then invalid_arg "Window_layer: window < 1";
    let grant_every =
      match grant_every with
      | Some g -> max 1 g
      | None -> max 1 (window / 2)
    in
    {
      base;
      window;
      grant_every;
      rxq = Queue.create ();
      sent = 0;
      granted = 0;
      consumed = 0;
      pending_grants = 0;
      credit_due = false;
      closed = false;
    }

  let capacity t = T.capacity t.base - 1
  let now t = T.now t.base
  let idle t = T.idle t.base

  let encode_credit count =
    let b = Bytes.create credit_bytes in
    Bytes.set b 0 tag_credit;
    Bytes.set_int32_le b 1 (Int32.of_int count);
    b

  let send_credit t =
    match T.try_send t.base (encode_credit t.consumed) with
    | Ok () ->
        t.credit_due <- false;
        Ok ()
    | Error `No_buffer ->
        (* The base refused transiently; the cumulative count lets any
           later grant stand in for this one. Retry from [pump]. *)
        t.credit_due <- true;
        Ok ()
    | Error e -> Error e

  let absorb t frame =
    if Bytes.length frame < 1 then () (* unframed garbage: skip *)
    else
      match Bytes.get frame 0 with
      | c when c = tag_data ->
          Queue.push (Bytes.sub frame 1 (Bytes.length frame - 1)) t.rxq
      | c when c = tag_credit ->
          if Bytes.length frame >= credit_bytes then begin
            let cum = Int32.to_int (Bytes.get_int32_le frame 1) in
            if cum > t.granted then t.granted <- cum
          end
      | _ -> () (* unknown tag: a peer not speaking this layer *)

  let pump t =
    if t.closed then Error `Closed
    else begin
      match T.pump t.base with
      | Error e -> Error e
      | Ok () ->
          let rec drain () =
            match T.recv t.base with
            | Error e -> Error e
            | Ok None -> Ok ()
            | Ok (Some frame) ->
                absorb t frame;
                drain ()
          in
          let r = drain () in
          (match r with
          | Ok () when t.credit_due -> send_credit t
          | r -> r)
    end

  let credits_available t = t.window - (t.sent - t.granted)

  let try_send t payload =
    if Bytes.length payload > capacity t then
      invalid_arg "Window_layer.try_send: payload exceeds capacity";
    match pump t with
    | Error e -> Error e
    | Ok () ->
        if credits_available t <= 0 then Error `No_buffer
        else begin
          let framed = Bytes.create (1 + Bytes.length payload) in
          Bytes.set framed 0 tag_data;
          Bytes.blit payload 0 framed 1 (Bytes.length payload);
          match T.try_send t.base framed with
          | Ok () ->
              t.sent <- t.sent + 1;
              Ok ()
          | Error e -> Error e
        end

  let recv t =
    match pump t with
    | Error e -> Error e
    | Ok () -> (
        match Queue.take_opt t.rxq with
        | None -> Ok None
        | Some payload ->
            t.consumed <- t.consumed + 1;
            t.pending_grants <- t.pending_grants + 1;
            if t.pending_grants >= t.grant_every then begin
              t.pending_grants <- 0;
              match send_credit t with
              | Ok () -> Ok (Some payload)
              | Error e -> Error e
            end
            else Ok (Some payload))

  include Transport.Defaults (struct
    type nonrec t = t

    let now = now
    let idle = idle
    let pump = pump
    let try_send = try_send
    let recv = recv
  end)

  let close t =
    t.closed <- true;
    T.close t.base

  let messages_sent t = t.sent
  let messages_received t = t.consumed
end
