(** Credit-window flow control as a functor over any {!Transport.S}.

    The same scheme as {!Window} — the receiver grants cumulative
    credits as the application consumes, the sender never exceeds
    [window] unconsumed messages — but expressed as a stackable layer:
    [Window_layer (Channel_transport)] reproduces the classic
    flow-controlled channel, and the result is itself a transport, so
    a reliability layer can ride on top ([Retrans_layer (Window_layer
    (...))] — inexpressible with the endpoint-pair modules).

    Both directions of the duplex connection are flow-controlled
    independently; data and credit frames share the underlying
    connection, distinguished by a one-byte tag (so {!capacity} is the
    base transport's minus one). Credits carry the {e cumulative}
    consumed count: a credit message the base transport loses is
    recovered by any later one. Because credit is granted only when the
    application consumes ({!Transport.S.recv}), the layer's inbound
    queue never holds more than [window] messages — flow control
    doubles as receive-buffer provisioning. *)

module Make (T : Transport.S) : sig
  type t

  (** Satisfies {!Transport.S}. [`No_buffer] from [try_send] means the
      credit window is exhausted (or the base refused transiently). *)

  val capacity : t -> int
  val now : t -> Flipc_sim.Vtime.t
  val idle : t -> unit
  val pump : t -> (unit, Transport.error) result
  val try_send : t -> Bytes.t -> (unit, Transport.error) result

  val send :
    t ->
    deadline:Flipc_sim.Vtime.t ->
    Bytes.t ->
    (unit, Transport.error) result

  val recv : t -> (Bytes.t option, Transport.error) result

  val recv_deadline :
    t -> deadline:Flipc_sim.Vtime.t -> (Bytes.t, Transport.error) result

  val close : t -> unit

  (** [create conn ~window ()] wraps a connected base transport. Both
      ends of the connection must be wrapped with the same [window] and
      [grant_every] (default [max 1 (window / 2)]). *)
  val create : T.t -> window:int -> ?grant_every:int -> unit -> t

  (** Sender-side credits currently available. *)
  val credits_available : t -> int

  val messages_sent : t -> int
  val messages_received : t -> int
end
