module Engine = Flipc_sim.Engine
module Prng = Flipc_sim.Prng

type side = {
  eng : Engine.t;
  inbound : Bytes.t Queue.t;
  depth : int;
  cap : int;
  idle_ns : int;
  rng : Prng.t; (* shared by both sides *)
  drop : float;
  dup : float;
  mutable peer : side option;
  mutable closed : bool;
  mutable s_sent : int;
  mutable s_received : int;
  mutable s_drops : int;
}

type t = side

let create_pair ?(capacity = 2048) ?(depth = 64) ?(idle_ns = 50) ?(drop = 0.)
    ?(dup = 0.) ?(seed = 0) eng () =
  if capacity < 1 then invalid_arg "Loopback: capacity < 1";
  if depth < 1 then invalid_arg "Loopback: depth < 1";
  if idle_ns < 1 then invalid_arg "Loopback: idle_ns < 1";
  let rng = Prng.create ~seed in
  let make () =
    {
      eng;
      inbound = Queue.create ();
      depth;
      cap = capacity;
      idle_ns;
      rng;
      drop;
      dup;
      peer = None;
      closed = false;
      s_sent = 0;
      s_received = 0;
      s_drops = 0;
    }
  in
  let a = make () and b = make () in
  a.peer <- Some b;
  b.peer <- Some a;
  (a, b)

let capacity t = t.cap
let now t = Engine.now t.eng
let idle t = Engine.delay t.idle_ns
let pump t = if t.closed then Error `Closed else Ok ()

(* Deliver into the peer's queue with optimistic-discard semantics: a
   full queue loses the message (counted), it never refuses the send. *)
let deliver peer payload =
  if Queue.length peer.inbound >= peer.depth then
    peer.s_drops <- peer.s_drops + 1
  else Queue.push (Bytes.copy payload) peer.inbound

let try_send t payload =
  if Bytes.length payload > t.cap then
    invalid_arg "Loopback.try_send: payload exceeds capacity";
  if t.closed then Error `Closed
  else
    match t.peer with
    | None -> Error `Closed
    | Some peer ->
        if peer.closed then Error `Peer_dead
        else begin
          t.s_sent <- t.s_sent + 1;
          if t.drop > 0. && Prng.float t.rng 1.0 < t.drop then
            peer.s_drops <- peer.s_drops + 1
          else begin
            deliver peer payload;
            if t.dup > 0. && Prng.float t.rng 1.0 < t.dup then
              deliver peer payload
          end;
          Ok ()
        end

let recv t =
  if t.closed then Error `Closed
  else
    match Queue.take_opt t.inbound with
    | None -> Ok None
    | Some payload ->
        t.s_received <- t.s_received + 1;
        Ok (Some payload)

include Transport.Defaults (struct
  type nonrec t = t

  let now = now
  let idle = idle
  let pump = pump
  let try_send = try_send
  let recv = recv
end)

let close t = t.closed <- true
let sent t = t.s_sent
let received t = t.s_received
let drops t = t.s_drops
