(** The [TRANSPORT] signature: one shape for every messaging layer.

    FLIPC's layering story — an optimistic transport underneath,
    reliability and flow control supplied by libraries "designed to fit
    between applications and FLIPC" — only composes if those libraries
    agree on a shape. This module defines that shape: a duplex,
    variable-length message connection with a unified typed error
    hierarchy and {e deadline-based} (absolute virtual-time) bounded
    waits.

    Implementations in this library:

    - {!Loopback} — in-memory pair over a bare simulation engine; the
      fast deterministic base for tests.
    - {!Channel_transport} — {!Flipc.Channel} (pooled buffers over raw
      FLIPC endpoints) as a transport: the base of every on-machine
      stack.
    - {!Window_layer} — credit-window flow control as a functor over
      {e any} transport.
    - {!Retrans_layer} — exactly-once in-order delivery (selective
      repeat + SACK) as a functor over {e any} transport.

    Because the layers are functors over {!S} and themselves satisfy
    {!S}, stacks compose freely: [Retrans_layer (Channel_transport)],
    [Window_layer (Channel_transport)], and previously inexpressible
    combinations like [Retrans_layer (Window_layer (Channel_transport))]
    all typecheck and run — and one conformance suite (a functor over a
    stack) validates them all.

    {b Timeouts.} Every bounded wait takes an absolute [deadline] in
    virtual nanoseconds (compare {!now}); no layer counts spins. A layer
    converts its own internal budgets to deadlines the same way.

    {b Blocking.} Transports poll: a blocked [send]/[recv_deadline]
    burns {!idle} (simulated CPU time) between attempts, so waiting has
    a cost in virtual time and the engine keeps running underneath. *)

(** The unified error hierarchy. [`Timeout]: the deadline passed.
    [`Closed]: this end was closed (or never connected). [`No_buffer]:
    transient local backpressure — pool starved, ring or window full;
    retrying later can succeed (blocking operations absorb these until
    the deadline). [`Peer_dead]: a reliability layer exhausted its retry
    budget — the peer is presumed unreachable. [`Api]: an unclassified
    transport-level error surfaced from {!Flipc.Api}. *)
type error =
  [ `Timeout | `Closed | `No_buffer | `Peer_dead | `Api of Flipc.Api.error ]

val error_to_string : error -> string

(** The transport signature proper. *)
module type S = sig
  (** One duplex connection. *)
  type t

  (** Largest payload a single message can carry. *)
  val capacity : t -> int

  (** Current virtual time (the clock [deadline]s are measured on). *)
  val now : t -> Flipc_sim.Vtime.t

  (** Burn one poll's worth of simulated CPU time; lets the engine (or
      other processes) make progress while this side waits. *)
  val idle : t -> unit

  (** Make protocol progress without transferring application data:
      absorb acknowledgements/credits, fire due retransmissions. A base
      transport's [pump] is a cheap no-op. *)
  val pump : t -> (unit, error) result

  (** Non-blocking send: [`No_buffer] instead of waiting when the layer
      cannot accept the payload right now. Raises [Invalid_argument] if
      the payload exceeds {!capacity}. *)
  val try_send : t -> Bytes.t -> (unit, error) result

  (** Blocking send, bounded by the absolute virtual-time [deadline]. *)
  val send : t -> deadline:Flipc_sim.Vtime.t -> Bytes.t -> (unit, error) result

  (** Non-blocking receive: [Ok None] when nothing is deliverable.
      Implicitly {!pump}s. *)
  val recv : t -> (Bytes.t option, error) result

  (** Blocking receive, bounded by the absolute [deadline]. *)
  val recv_deadline :
    t -> deadline:Flipc_sim.Vtime.t -> (Bytes.t, error) result

  (** Close this end: subsequent operations report [`Closed]. *)
  val close : t -> unit
end

(** What a layer must provide to get the blocking operations for free:
    the non-blocking core of {!S}. *)
module type CORE = sig
  type t

  val now : t -> Flipc_sim.Vtime.t
  val idle : t -> unit
  val pump : t -> (unit, error) result
  val try_send : t -> Bytes.t -> (unit, error) result
  val recv : t -> (Bytes.t option, error) result
end

(** [Defaults (C)] derives the deadline-bounded blocking operations from
    a non-blocking core: [send] retries [try_send] (absorbing transient
    [`No_buffer]) and [recv_deadline] polls [recv], each burning
    {!S.idle} between attempts until the deadline passes. *)
module Defaults (C : CORE) : sig
  val send :
    C.t -> deadline:Flipc_sim.Vtime.t -> Bytes.t -> (unit, error) result

  val recv_deadline :
    C.t -> deadline:Flipc_sim.Vtime.t -> (Bytes.t, error) result
end

(** [Group (T)] is receive-any over several connections of one
    transport, with round-robin fairness — {!Flipc.Endpoint_group}
    lifted to work over any stack (so a server can fan in over
    exactly-once connections, not just raw endpoints). *)
module Group (T : S) : sig
  type t

  (** [create ?semaphore ()] makes an empty group. With [semaphore],
      {!recv_any_wait} can block a scheduler thread on it instead of
      polling — every member's receive path must then be wired to post
      the {e same} semaphore (e.g. [Channel_transport.create
      ~semaphore]); the group cannot verify this through an abstract
      transport, so it is the caller's contract. *)
  val create : ?semaphore:Flipc_rt.Rt_semaphore.t -> unit -> t

  (** The wakeup semaphore the group was created with, if any. *)
  val semaphore : t -> Flipc_rt.Rt_semaphore.t option

  (** Membership is by physical identity of the connection value.
      Adding posts the group semaphore once (if present) so waiters
      rescan — a message deposited before the member joined has
      already consumed its post. *)
  val add : t -> T.t -> unit

  (** Removing keeps the round-robin cursor pointing at the member that
      would have been scanned next (same compaction rule as
      {!Flipc.Endpoint_group.remove}). Absent members are ignored. *)
  val remove : t -> T.t -> unit

  val length : t -> int

  (** One fair scan: starts after the last successful member, returns
      the first connection with a deliverable message. [Ok None] when
      every member is empty (or the group is). A member error aborts the
      scan. *)
  val recv_any : t -> ((T.t * Bytes.t) option, error) result

  (** Blocking {!recv_any}: polls until the deadline, burning idle time
      on the first member. An empty group reports [`Closed] (with no
      member there is no clock to wait on). *)
  val recv_any_deadline :
    t -> deadline:Flipc_sim.Vtime.t -> (T.t * Bytes.t, error) result

  (** Blocking {!recv_any} over the group semaphore: the scheduler
      thread sleeps (priority-ordered wakeup, no polling) until an
      engine posts it, then rescans fairly; spurious wakeups loop back
      to sleep. Raises [Invalid_argument] if the group has no
      semaphore. Only callable from a {!Flipc_rt.Sched} thread. *)
  val recv_any_wait :
    t -> Flipc_rt.Sched.thread -> (T.t * Bytes.t, error) result
end
