(** In-memory loopback transport: a connected pair over a bare
    simulation engine.

    No machine, no memory model, no NIC — just two queues and the
    virtual clock, which makes it the fast deterministic substrate for
    exercising the layers above ({!Window_layer}, {!Retrans_layer}) and
    the conformance suite itself. Semantics mirror FLIPC's optimistic
    transport: a message that finds the peer's inbound queue full is
    {e discarded}, not refused — and optional seeded fault injection
    (drop / duplicate probability, deterministic per seed) stands in
    for a lossy interconnect.

    Both sides must be driven from processes of the same engine;
    {!Transport.S.idle} advances the clock with {!Flipc_sim.Engine.delay}. *)

type t

(** Satisfies {!Transport.S}. *)

val capacity : t -> int
val now : t -> Flipc_sim.Vtime.t
val idle : t -> unit
val pump : t -> (unit, Transport.error) result
val try_send : t -> Bytes.t -> (unit, Transport.error) result

val send :
  t -> deadline:Flipc_sim.Vtime.t -> Bytes.t -> (unit, Transport.error) result

val recv : t -> (Bytes.t option, Transport.error) result

val recv_deadline :
  t -> deadline:Flipc_sim.Vtime.t -> (Bytes.t, Transport.error) result

val close : t -> unit

(** [create_pair engine ()] builds two connected ends.

    @param capacity per-message payload limit (default 2048 bytes)
    @param depth inbound queue depth per side; an arriving message
      beyond it is discarded, like FLIPC's no-posted-buffer case
      (default 64)
    @param idle_ns virtual time burned per {!idle} poll (default 50)
    @param drop probability an outbound message is silently lost
      (default 0.)
    @param dup probability an outbound message is delivered twice
      (default 0.)
    @param seed PRNG seed for the fault process (default 0; same seed,
      same fault pattern) *)
val create_pair :
  ?capacity:int ->
  ?depth:int ->
  ?idle_ns:int ->
  ?drop:float ->
  ?dup:float ->
  ?seed:int ->
  Flipc_sim.Engine.t ->
  unit ->
  t * t

(** {1 Counters} *)

(** Messages accepted from this side's sender. *)
val sent : t -> int

(** Messages delivered to this side's receiver. *)
val received : t -> int

(** Inbound messages discarded at this side: queue full (optimistic
    discard) or injected wire loss on the way here. *)
val drops : t -> int
