(** Reliable ordered delivery above the optimistic transport.

    FLIPC itself deliberately discards a message that finds no posted
    receive buffer, and a lossy interconnect ({!Flipc_net.Faulty}) can
    additionally drop, duplicate or reorder packets on the wire. This
    module is the recovery library the paper's layering prescribes: a
    sender/receiver pair that turns raw endpoints into an exactly-once,
    in-order channel, implemented entirely above the transport.

    {b Protocol.} Each data message carries an 8-byte library header
    inside FLIPC's fixed-size payload:

    {v
      bytes 0..3   sequence number (int32 LE, first message = 1)
      bytes 4..7   application payload length (int32 LE)
      bytes 8..    application payload
    v}

    The receiver delivers strictly in sequence (go-back-N): an in-order
    message advances the cumulative counter and is handed to the
    application exactly once; a duplicate or out-of-order message is
    discarded and re-acknowledged. Acknowledgements flow on a dedicated
    reverse endpoint pair, credit-style: each ack message carries the
    receiver's {e cumulative} highest in-order sequence (int32 LE), so a
    lost ack is repaired by any later ack. The sender keeps at most
    [window] unacknowledged messages in flight (the ack doubles as the
    credit return), retransmits the whole in-flight window when the
    oldest message outlives the current timeout, and backs the timeout
    off exponentially ([rto_ns] doubling up to [max_rto_ns]) until an
    acknowledgement makes progress. After [max_retries] unanswered
    rounds the sender reports [`Timeout] instead of spinning forever. *)

type config = {
  window : int;  (** max unacknowledged messages in flight *)
  rto_ns : int;  (** initial retransmission timeout (virtual ns) *)
  max_rto_ns : int;  (** exponential-backoff cap *)
  ack_every : int;
      (** acknowledge every n in-order messages (1 = every message;
          duplicates and gaps are always acknowledged immediately) *)
  max_retries : int;  (** retransmission rounds before [`Timeout] *)
  spin_ns : int;  (** CPU time charged per bounded-wait poll iteration *)
}

(** [window = 8], [rto_ns = 1ms], [max_rto_ns = 8ms], [ack_every = 1],
    [max_retries = 30], [spin_ns = 200]. The timeout must exceed the
    fabric's round-trip time; 1 ms covers every fabric modelled here. *)
val default_config : config

(** Largest application payload per message
    (= {!Flipc.Api.payload_bytes} - 8 bytes of sequence header). *)
val capacity : Flipc.Api.t -> int

(** {1 Sender} *)

type sender

(** [create_sender api ~sim ~data_ep ~ack_ep ()] wraps a connected send
    endpoint [data_ep] and a receive endpoint [ack_ep] (the peer's ack
    channel targets it; ack receive buffers are posted here, sized from
    the window). [sim] supplies virtual time for the retransmission
    timer. *)
val create_sender :
  Flipc.Api.t ->
  sim:Flipc_sim.Engine.t ->
  data_ep:Flipc.Api.endpoint ->
  ack_ep:Flipc.Api.endpoint ->
  ?config:config ->
  unit ->
  sender

(** [send t payload] queues [payload] with the next sequence number,
    stashing a copy for retransmission. Blocks (bounded) while the window
    is full, pumping acknowledgements and retransmissions; [`Timeout]
    once the oldest in-flight message has been retransmitted
    [max_retries] times without progress — the peer is unreachable.
    Raises [Invalid_argument] if the payload exceeds [capacity]. *)
val send : sender -> Bytes.t -> (unit, [ `Timeout ]) result

(** [pump t] absorbs acknowledgements and fires due retransmissions
    without sending anything new; call it while waiting on other work.
    [`Timeout] under the same conditions as [send]. *)
val pump : sender -> (unit, [ `Timeout ]) result

(** [flush t ~timeout_ns] pumps until every queued message is
    acknowledged, or [timeout_ns] of virtual time elapse. *)
val flush : sender -> timeout_ns:int -> (unit, [ `Timeout ]) result

val in_flight : sender -> int

(** Highest cumulative sequence acknowledged by the peer. *)
val acked : sender -> int

(** Data messages retransmitted so far. *)
val retransmits : sender -> int

(** Ack messages the transport discarded at this endpoint (no posted
    buffer); recovery is inherent — any later ack supersedes them. *)
val ack_drops : sender -> int

(** {1 Receiver} *)

type receiver

(** [create_receiver api ~data_ep ~ack_ep ()] posts receive buffers on
    [data_ep] (sized from the window) and acknowledges through [ack_ep],
    a send endpoint already connected to the sender's [ack_ep]. *)
val create_receiver :
  Flipc.Api.t ->
  data_ep:Flipc.Api.endpoint ->
  ack_ep:Flipc.Api.endpoint ->
  ?config:config ->
  unit ->
  receiver

(** [recv t] polls for the next in-sequence payload: exactly-once,
    in-order. Duplicates and out-of-order arrivals are consumed,
    counted and re-acknowledged internally. *)
val recv : receiver -> Bytes.t option

(** In-order messages delivered to the application. *)
val delivered : receiver -> int

(** Messages discarded as already-delivered (retransmission overlap or
    wire duplication). *)
val duplicates : receiver -> int

(** Messages discarded because they arrived beyond the next expected
    sequence (go-back-N recovers them by retransmission). *)
val reordered : receiver -> int

(** Acknowledgement messages sent. *)
val acks_sent : receiver -> int

(** Data messages the transport discarded at this endpoint since
    creation (no posted buffer — the optimistic discard the paper
    describes); the retransmission protocol recovers every one. *)
val transport_drops : receiver -> int
