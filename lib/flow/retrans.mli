(** Reliable ordered delivery above the optimistic transport.

    FLIPC itself deliberately discards a message that finds no posted
    receive buffer, and a lossy interconnect ({!Flipc_net.Faulty}) can
    additionally drop, duplicate or reorder packets on the wire. This
    module is the recovery library the paper's layering prescribes: a
    sender/receiver pair that turns raw endpoints into an exactly-once,
    in-order channel, implemented entirely above the transport.

    {b Data frames.} Each data message carries an 8-byte library header
    inside FLIPC's fixed-size payload:

    {v
      bytes 0..3   sequence number (int32 LE, first message = 1)
      bytes 4..7   application payload length (int32 LE)
      bytes 8..    application payload
    v}

    {b Acknowledgements} flow on a dedicated reverse endpoint pair,
    credit-style, as 12-byte frames:

    {v
      bytes 0..3   cumulative highest in-order sequence (int32 LE)
      bytes 4..11  SACK bitmap (int64 LE): bit i set means the receiver
                   holds sequence cum+1+i out of order
    v}

    A lost ack is repaired by any later ack: both fields only describe
    state the receiver never gives back.

    {b Recovery.} The default mode is {e selective repeat}: the receiver
    buffers up to [window] out-of-order payloads (the SACK bitmap
    advertises them) and the sender retransmits only the unacknowledged
    holes when the oldest in-flight message outlives the current
    timeout. [Go_back_n] is kept as the ablation mode: out-of-order
    arrivals are discarded and a timeout resends the whole window.

    The retransmission timeout adapts to the measured round trip in the
    RFC 6298 style — [SRTT], [RTTVAR] and [RTO = SRTT + 4*RTTVAR] —
    with Karn's rule (a retransmitted or SACK-repaired frame is never
    sampled). The configured [rto_ns] is only the initial value and
    floor; an unanswered round still backs the live timeout off
    exponentially up to [max_rto_ns]. After [max_retries] unanswered
    retransmissions of the oldest frame the sender reports [`Timeout].
    Local backpressure (transmit-pool starvation or a momentarily full
    send ring) is {e not} counted toward that verdict: it is "no
    progress this round" and the RTO loop retries, giving up only after
    [max_retries] consecutive rounds in which nothing could reach the
    wire at all. *)

(** Recovery discipline; [Go_back_n] is the ablation mode. *)
type mode = Selective_repeat | Go_back_n

type config = {
  window : int;  (** max unacknowledged messages in flight (<= 64) *)
  rto_ns : int;  (** initial retransmission timeout and floor (virtual ns) *)
  max_rto_ns : int;  (** exponential-backoff / adaptive-RTO cap *)
  ack_every : int;
      (** acknowledge every n in-order messages, and re-acknowledge at
          most once per n duplicate/gap anomalies (1 = every one) *)
  max_retries : int;  (** retransmission rounds before [`Timeout] *)
  spin_ns : int;  (** CPU time charged per bounded-wait poll iteration *)
  mode : mode;
}

(** [window = 8], [rto_ns = 1ms], [max_rto_ns = 8ms], [ack_every = 1],
    [max_retries = 30], [spin_ns = 200], [mode = Selective_repeat]. The
    initial timeout must exceed the fabric's round-trip time; 1 ms
    covers every fabric modelled here, and the estimator pulls the live
    timeout toward the measured round trip from the first ack on. *)
val default_config : config

(** Largest application payload per message
    (= {!Flipc.Api.payload_bytes} - 8 bytes of sequence header). *)
val capacity : Flipc.Api.t -> int

(** SACK bitmap width: out-of-order frames at most this far above the
    cumulative sequence can be advertised (and [window] may not exceed
    it). *)
val sack_width : int

(** {1 Sender} *)

type sender

(** [create_sender api ~sim ~data_ep ~ack_ep ()] wraps a connected send
    endpoint [data_ep] and a receive endpoint [ack_ep] (the peer's ack
    channel targets it; ack receive buffers are posted here, sized from
    the window). [sim] supplies virtual time for the retransmission
    timer and RTT samples. *)
val create_sender :
  Flipc.Api.t ->
  sim:Flipc_sim.Engine.t ->
  data_ep:Flipc.Api.endpoint ->
  ack_ep:Flipc.Api.endpoint ->
  ?config:config ->
  unit ->
  sender

(** [send t payload] queues [payload] with the next sequence number,
    stashing a copy for retransmission. Blocks (bounded) while the window
    is full, pumping acknowledgements and retransmissions; [`Timeout]
    once the oldest in-flight message has been retransmitted
    [max_retries] times without progress — the peer is unreachable — or
    after [max_retries] consecutive rounds of pure local backpressure.
    Raises [Invalid_argument] if the payload exceeds [capacity]. *)
val send : sender -> Bytes.t -> (unit, [ `Timeout ]) result

(** [send_deadline t ?deadline payload] is [send] with an additional
    absolute virtual-time bound: while waiting for window space or for
    local backpressure to clear, [`Timeout] is reported as soon as the
    virtual clock reaches [deadline] — even if the protocol's own
    retry budget ([max_retries]) is not yet exhausted. Without
    [deadline] it is exactly [send]. *)
val send_deadline :
  sender -> ?deadline:int -> Bytes.t -> (unit, [ `Timeout ]) result

(** [pump t] absorbs acknowledgements and fires due retransmissions
    without sending anything new; call it while waiting on other work.
    [`Timeout] under the same conditions as [send]. *)
val pump : sender -> (unit, [ `Timeout ]) result

(** [flush t ~timeout_ns] pumps until every queued message is
    acknowledged, or [timeout_ns] of virtual time elapse. (Relative
    convenience form of {!flush_deadline}.) *)
val flush : sender -> timeout_ns:int -> (unit, [ `Timeout ]) result

(** [flush_deadline t ~deadline] pumps until every queued message is
    acknowledged or the virtual clock passes [deadline] (absolute,
    virtual ns). *)
val flush_deadline : sender -> deadline:int -> (unit, [ `Timeout ]) result

val in_flight : sender -> int

(** Highest cumulative sequence acknowledged by the peer. *)
val acked : sender -> int

(** Data messages actually retransmitted on the wire so far. Attempts
    refused by the transport (see {!backpressure}) are not counted. *)
val retransmits : sender -> int

(** Transmit attempts that never reached the wire: the transmit pool
    was starved or the send ring full at that moment. *)
val backpressure : sender -> int

(** Smoothed round-trip estimate in virtual ns (0 until the first
    un-retransmitted frame is cumulatively acknowledged). *)
val srtt_ns : sender -> int

(** RTT variance estimate in virtual ns. *)
val rttvar_ns : sender -> int

(** The live retransmission timeout: [SRTT + 4*RTTVAR] clamped to
    [rto_ns .. max_rto_ns], times any active exponential backoff. *)
val rto_current_ns : sender -> int

(** Ack messages the transport discarded at this endpoint (no posted
    buffer); recovery is inherent — any later ack supersedes them. *)
val ack_drops : sender -> int

(** {1 Receiver} *)

type receiver

(** [create_receiver api ~sim ~data_ep ~ack_ep ()] posts receive buffers
    on [data_ep] (sized from the window) and acknowledges through
    [ack_ep], a send endpoint already connected to the sender's
    [ack_ep]. [sim] supplies virtual time for re-ack rate limiting. *)
val create_receiver :
  Flipc.Api.t ->
  sim:Flipc_sim.Engine.t ->
  data_ep:Flipc.Api.endpoint ->
  ack_ep:Flipc.Api.endpoint ->
  ?config:config ->
  unit ->
  receiver

(** [recv t] polls for the next in-sequence payload: exactly-once,
    in-order. Duplicates are consumed and counted; out-of-order
    arrivals are buffered (selective repeat) or discarded
    ([Go_back_n]), and re-acknowledged at most once per [ack_every]
    anomalies or per static-RTO tick. *)
val recv : receiver -> Bytes.t option

(** In-order messages delivered to the application. *)
val delivered : receiver -> int

(** Messages discarded as already-delivered or already-buffered
    (retransmission overlap or wire duplication). *)
val duplicates : receiver -> int

(** Messages that arrived beyond the next expected sequence: buffered
    under selective repeat, discarded under [Go_back_n]. *)
val reordered : receiver -> int

(** Acknowledgement messages sent. *)
val acks_sent : receiver -> int

(** Re-acknowledgements suppressed by the anomaly rate limit. *)
val reacks_suppressed : receiver -> int

(** Total out-of-order payloads ever buffered for selective repeat
    (the [ooo_held] probe exposes the live occupancy instead). *)
val ooo_buffered : receiver -> int

(** Data messages the transport discarded at this endpoint since
    creation (no posted buffer — the optimistic discard the paper
    describes); the retransmission protocol recovers every one. *)
val transport_drops : receiver -> int
